"""Tests for the routing-policy layer and its engine integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import simulate
from repro.engine.flows import FlowBuilder
from repro.errors import ConfigError
from repro.routing import ROUTING_POLICIES, validate_policy
from repro.routing.policy import adaptive_index, ecmp_index
from repro.topology import FaultSet, DegradedTopology, TorusTopology, build
from repro.units import DEFAULT_LINK_CAPACITY as CAP
from repro.workloads import build as build_workload

FAMILY_SIZES = {"torus": 64, "fattree": 64, "thintree": 64, "ghc": 64,
                "nesttree": 64, "nestghc": 64, "dragonfly": 72,
                "jellyfish": 64}
FAMILY_PARAMS = {"nesttree": {"t": 2, "u": 2}, "nestghc": {"t": 2, "u": 2}}


class TestValidatePolicy:
    def test_known_policies_pass_through(self):
        for policy in ROUTING_POLICIES:
            assert validate_policy(policy) == policy

    def test_unknown_policy_is_a_typed_error(self):
        with pytest.raises(ConfigError, match="routing policy"):
            validate_policy("spray")

    def test_simulate_rejects_unknown_policy(self):
        topo = TorusTopology((4,))
        b = FlowBuilder(4)
        b.add_flow(0, 1, CAP)
        with pytest.raises(ConfigError, match="routing policy"):
            simulate(topo, b.build(), routing="spray")


class TestEcmpIndex:
    def test_single_candidate_is_always_zero(self):
        assert ecmp_index(123, 0, 5, 1) == 0
        assert ecmp_index(123, 0, 5, 0) == 0

    def test_stable_per_flow(self):
        assert ecmp_index(7, 3, 9, 4) == ecmp_index(7, 3, 9, 4)

    def test_in_range(self):
        for fid in range(200):
            assert 0 <= ecmp_index(fid, 1, 2, 5) < 5

    def test_spreads_over_all_candidates(self):
        hits = {ecmp_index(fid, 0, 2, 4) for fid in range(256)}
        assert hits == {0, 1, 2, 3}

    def test_pair_changes_the_spread(self):
        a = [ecmp_index(fid, 0, 2, 4) for fid in range(64)]
        b = [ecmp_index(fid, 1, 3, 4) for fid in range(64)]
        assert a != b


class TestAdaptiveIndex:
    def test_idle_network_takes_the_deterministic_route(self):
        occ = np.zeros(10, dtype=np.int64)
        cands = [np.array([0, 1]), np.array([2, 3])]
        assert adaptive_index(cands, occ) == 0

    def test_congestion_moves_the_choice(self):
        occ = np.zeros(10, dtype=np.int64)
        occ[1] = 5
        cands = [np.array([0, 1]), np.array([2, 3])]
        assert adaptive_index(cands, occ) == 1

    def test_tie_breaks_to_the_first_minimum(self):
        occ = np.array([2, 2, 2, 2], dtype=np.int64)
        cands = [np.array([0, 1]), np.array([2, 3])]
        assert adaptive_index(cands, occ) == 0

    def test_worst_link_governs(self):
        # candidate 0: links busy 1,1 (max 1); candidate 1: 0,3 (max 3)
        occ = np.array([1, 1, 0, 3], dtype=np.int64)
        cands = [np.array([0, 1]), np.array([2, 3])]
        assert adaptive_index(cands, occ) == 0


class TestWrapTieSpreading:
    """The dor even-radix tie fix: ecmp actually uses both directions."""

    def topo(self):
        return TorusTopology((4,))  # ring 0-1-2-3; 0 -> 2 ties

    def tie_flows(self, n=16):
        # two tied pairs whose deterministic routes share link 1 -> 2; the
        # wrap-direction candidates are completely disjoint from them
        b = FlowBuilder(4)
        for _ in range(n):
            b.add_flow(0, 2, CAP)
            b.add_flow(1, 3, CAP)
        return b.build()

    def interior_bits(self, topo, routing):
        from repro.obs import MetricsCollector

        collector = MetricsCollector(topo.links.num_links)
        simulate(topo, self.tie_flows(), routing=routing, metrics=collector)
        forward = topo.links.id_of(0, 1)   # 0 -> 1 -> 2
        wrap = topo.links.id_of(0, 3)      # 0 -> 3 -> 2
        return collector.link_bits[forward], collector.link_bits[wrap]

    def test_ecmp_index_covers_both_directions(self):
        cands = self.topo().route_candidates(0, 2)
        assert len(cands) == 2
        assert {ecmp_index(fid, 0, 2, len(cands))
                for fid in range(64)} == {0, 1}

    def test_deterministic_leaves_the_wrap_direction_idle(self):
        forward, wrap = self.interior_bits(self.topo(), "deterministic")
        assert forward > 0
        assert wrap == 0

    def test_ecmp_loads_both_directions(self):
        forward, wrap = self.interior_bits(self.topo(), "ecmp")
        assert forward > 0
        assert wrap > 0

    def test_adaptive_loads_both_directions(self):
        forward, wrap = self.interior_bits(self.topo(), "adaptive")
        assert forward > 0
        assert wrap > 0

    def test_spreading_relieves_the_shared_bottleneck(self):
        # deterministic: 32 flows pile onto link 1 -> 2 (32 s); adaptive
        # alternates directions per pair until the injection NICs bind
        # (16 flows each -> 16 s); ecmp's hash spread lands in between
        det = simulate(self.topo(), self.tie_flows(), routing="deterministic")
        ecmp = simulate(self.topo(), self.tie_flows(), routing="ecmp")
        adaptive = simulate(self.topo(), self.tie_flows(), routing="adaptive")
        assert det.makespan == pytest.approx(32.0)
        assert ecmp.makespan < det.makespan
        assert adaptive.makespan == pytest.approx(16.0)


class TestDeterministicIdentity:
    """``routing="deterministic"`` is bitwise the pre-policy engine."""

    @pytest.mark.parametrize("family", sorted(FAMILY_SIZES))
    def test_every_family_is_unchanged(self, family):
        topo = build(family, FAMILY_SIZES[family],
                     **FAMILY_PARAMS.get(family, {}))
        flows = build_workload("unstructuredhr", topo.num_endpoints,
                               seed=0).build()
        base = simulate(topo, flows, fidelity="approx")
        det = simulate(topo, flows, fidelity="approx",
                       routing="deterministic")
        assert det.makespan == base.makespan
        assert det.events == base.events
        assert det.reallocations == base.reallocations

    def test_healthy_deterministic_keeps_bare_cache_keys(self):
        # pre-policy sweeps shared {(src, dst): route} caches; the healthy
        # deterministic path must keep that exact key shape
        topo = TorusTopology((4,))
        b = FlowBuilder(4)
        b.add_flow(0, 3, CAP)
        cache: dict = {}
        simulate(topo, b.build(), route_cache=cache)
        assert all(isinstance(k, tuple) and len(k) == 2
                   and all(isinstance(x, int) for x in k) for k in cache)

    def test_single_flow_identical_under_every_policy(self):
        # an idle network always selects candidate 0 — the deterministic
        # route — so equal-load selections agree across all policies
        topo = build("nesttree", 64, t=2, u=2)
        b = FlowBuilder(64)
        b.add_flow(3, 60, CAP)
        results = {p: simulate(topo, b.build(), routing=p)
                   for p in ROUTING_POLICIES}
        assert results["ecmp"].makespan == results["deterministic"].makespan
        assert results["adaptive"].makespan == \
            results["deterministic"].makespan


class TestSharedCacheIsolation:
    """The consolidated route-cache fill: no cross-policy/fault poisoning."""

    def topo(self):
        return build("nesttree", 64, t=2, u=4)

    def flows(self):
        return build_workload("unstructuredhr", 64, seed=3).build()

    def test_policies_do_not_poison_each_other(self):
        cache: dict = {}
        flows = self.flows()
        topo = self.topo()
        fresh_det = simulate(topo, flows, fidelity="approx")
        simulate(topo, flows, fidelity="approx", routing="ecmp",
                 route_cache=cache)
        simulate(topo, flows, fidelity="approx", routing="adaptive",
                 route_cache=cache)
        shared_det = simulate(topo, flows, fidelity="approx",
                              route_cache=cache)
        assert shared_det.makespan == fresh_det.makespan
        assert shared_det.events == fresh_det.events

    def test_degraded_views_do_not_poison_the_healthy_cache(self):
        cache: dict = {}
        flows = self.flows()
        topo = self.topo()
        degraded = DegradedTopology(
            topo, FaultSet.sample(topo, cables=6, seed=5))
        fresh_healthy = simulate(topo, flows, fidelity="approx")
        fresh_degraded = simulate(degraded, flows, fidelity="approx")
        # interleave healthy and degraded runs through one shared cache
        shared_degraded = simulate(degraded, flows, fidelity="approx",
                                   route_cache=cache)
        shared_healthy = simulate(topo, flows, fidelity="approx",
                                  route_cache=cache)
        assert shared_healthy.makespan == fresh_healthy.makespan
        assert shared_degraded.makespan == fresh_degraded.makespan

    def test_distinct_fault_sets_get_distinct_cache_entries(self):
        topo = self.topo()
        flows = self.flows()
        cache: dict = {}
        a = DegradedTopology(topo, FaultSet.sample(topo, cables=6, seed=1))
        b = DegradedTopology(topo, FaultSet.sample(topo, cables=6, seed=2))
        fresh_a = simulate(a, flows, fidelity="approx")
        fresh_b = simulate(b, flows, fidelity="approx")
        assert simulate(a, flows, fidelity="approx",
                        route_cache=cache).makespan == fresh_a.makespan
        assert simulate(b, flows, fidelity="approx",
                        route_cache=cache).makespan == fresh_b.makespan


class TestPolicyReproducibility:
    @pytest.mark.parametrize("routing", ROUTING_POLICIES)
    @pytest.mark.parametrize("allocator", ("incremental", "rebuild"))
    def test_repeat_runs_are_identical(self, routing, allocator):
        topo = build("nesttree", 64, t=2, u=4)
        flows = build_workload("unstructuredhr", 64, seed=0).build()
        a = simulate(topo, flows, fidelity="approx", routing=routing,
                     allocator=allocator)
        b = simulate(topo, flows, fidelity="approx", routing=routing,
                     allocator=allocator)
        assert a.makespan == b.makespan
        assert a.events == b.events

    def test_ecmp_agrees_across_allocators(self):
        # ecmp selection is oblivious, so both allocators route identically
        # (adaptive is allocator-dependent by design: admission order
        # differs, see docs/routing.md)
        topo = build("nesttree", 64, t=2, u=4)
        flows = build_workload("unstructuredhr", 64, seed=0).build()
        inc = simulate(topo, flows, fidelity="approx", routing="ecmp")
        reb = simulate(topo, flows, fidelity="approx", routing="ecmp",
                       allocator="rebuild")
        assert inc.makespan == pytest.approx(reb.makespan, rel=1e-9)


class TestRoutingThreading:
    """The policy knob reaches keys, labels, records and snapshots."""

    def test_sweep_key_is_unchanged_for_the_default(self):
        from repro.core.config import TopologySpec, WorkloadSpec
        from repro.sweep import SweepCell

        cell = SweepCell(workload=WorkloadSpec("allreduce"),
                         topology=TopologySpec("fattree", {}))
        assert "routing" not in cell.key()
        ecmp = SweepCell(workload=WorkloadSpec("allreduce"),
                         topology=TopologySpec("fattree", {}),
                         routing="ecmp")
        assert ecmp.key().endswith("|routing(ecmp)")
        assert ecmp.key() != cell.key()

    def test_candidate_label_carries_the_policy(self):
        from repro.search.space import Candidate

        assert Candidate("nesttree", 2, 4).label() == "nesttree(2,4)"
        assert Candidate("nesttree", 2, 4, routing="adaptive").label() == \
            "nesttree(2,4)~adaptive"

    def test_metrics_snapshot_records_the_policy(self):
        from repro.obs import MetricsCollector, validate_snapshot

        topo = TorusTopology((4,))
        b = FlowBuilder(4)
        b.add_flow(0, 2, CAP)
        collector = MetricsCollector(topo.links.num_links)
        result = simulate(topo, b.build(), routing="ecmp", metrics=collector)
        validate_snapshot(result.metrics)
        assert result.metrics["routing"] == "ecmp"

    def test_design_space_routings_axis(self):
        from repro.search.space import DesignSpace

        space = DesignSpace(endpoints=64,
                            routings=("deterministic", "ecmp", "adaptive"))
        cands = space.enumerate()
        assert space.size() == len(cands)
        assert {c.routing for c in cands} == set(ROUTING_POLICIES)
        with pytest.raises(ConfigError):
            DesignSpace(endpoints=64, routings=("spray",))
