"""Tests for the Monte-Carlo availability campaign runner and its CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.config import TopologySpec, WorkloadSpec
from repro.errors import ConfigError
from repro.sweep import (CAMPAIGN_SCHEMA_VERSION, campaign_table,
                         parse_seed_range, run_campaign,
                         write_campaign_report)
from repro.sweep.campaign import _select_topologies

ENDPOINTS = 64


class TestParseSeedRange:
    def test_half_open_range(self):
        assert parse_seed_range("0:8") == list(range(8))
        assert parse_seed_range("3:5") == [3, 4]

    def test_bare_integer(self):
        assert parse_seed_range("7") == [7]
        assert parse_seed_range(" 0 ") == [0]

    def test_empty_and_inverted_ranges_rejected(self):
        with pytest.raises(ConfigError, match="0 <= A < B"):
            parse_seed_range("5:5")
        with pytest.raises(ConfigError, match="0 <= A < B"):
            parse_seed_range("5:2")
        with pytest.raises(ConfigError, match="0 <= A < B"):
            parse_seed_range("-1:3")

    def test_garbage_rejected(self):
        for bad in ("", "a:b", "1:2:3", "1.5", "one"):
            with pytest.raises(ConfigError):
                parse_seed_range(bad)

    def test_negative_single_seed_rejected(self):
        with pytest.raises(ConfigError, match=">= 0"):
            parse_seed_range("-3")


class TestSelectTopologies:
    SPECS = [TopologySpec("torus"), TopologySpec("fattree"),
             TopologySpec("nesttree", {"t": 2, "u": 4}),
             TopologySpec("nesttree", {"t": 4, "u": 4})]

    def test_empty_filter_keeps_all(self):
        assert _select_topologies(self.SPECS, None) == self.SPECS
        assert _select_topologies(self.SPECS, []) == self.SPECS

    def test_family_matches_all_variants(self):
        chosen = _select_topologies(self.SPECS, ["nesttree"])
        assert [s.label() for s in chosen] == ["nesttree(2,4)",
                                               "nesttree(4,4)"]

    def test_exact_label_matches_one(self):
        chosen = _select_topologies(self.SPECS, ["nesttree(4,4)", "torus"])
        assert [s.label() for s in chosen] == ["torus", "nesttree(4,4)"]

    def test_unknown_selection_lists_choices(self):
        with pytest.raises(ConfigError, match="nesttree\\(2,4\\)"):
            _select_topologies(self.SPECS, ["hypercube"])


def tiny_campaign(**kw):
    defaults = dict(
        endpoints=ENDPOINTS,
        workload=WorkloadSpec("allreduce"),
        topologies=[TopologySpec("torus")],
        seeds=[0, 1, 2],
        cables=4,
        mttr_frac=0.25,
        bootstrap=200,
    )
    defaults.update(kw)
    return run_campaign(**defaults)


class TestRunCampaign:
    def test_report_structure(self):
        report = tiny_campaign()
        assert report["schema"] == CAMPAIGN_SCHEMA_VERSION
        assert report["endpoints"] == ENDPOINTS
        assert report["seeds"] == [0, 1, 2]
        (row,) = report["topologies"]
        assert row["topology"] == "torus"
        assert row["runs"] == 3
        assert row["completed"] + len(row["failed"]) == 3
        assert 0.0 <= row["availability"] <= 1.0
        assert row["healthy_makespan_s"] > 0
        for sample in row["by_seed"]:
            assert sample["slowdown"] >= 1.0
            assert sample["transient"]["fault_events"] >= 0
        if row["completed"]:
            lo, hi = row["slowdown_ci95"]
            assert lo <= row["slowdown_mean"] <= hi or row["completed"] == 1
            assert row["slowdown_max"] >= row["slowdown_mean"]
            assert row["transient_totals"]["fault_events"] > 0

    def test_deterministic_reports(self, tmp_path):
        a = tiny_campaign()
        b = tiny_campaign()
        assert a == b
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        write_campaign_report(a, pa)
        write_campaign_report(b, pb)
        assert pa.read_text() == pb.read_text()
        assert json.loads(pa.read_text()) == a

    def test_parallel_matches_serial(self, tmp_path):
        serial = tiny_campaign(seeds=[0, 1])
        parallel = tiny_campaign(seeds=[0, 1], jobs=2,
                                 checkpoint=tmp_path / "ck")
        assert serial == parallel
        assert (tmp_path / "ck.healthy.jsonl").exists()
        assert (tmp_path / "ck.mc.jsonl").exists()

    def test_resume_from_checkpoint_skips_completed(self, tmp_path):
        ck = tmp_path / "ck"
        first = tiny_campaign(seeds=[0, 1], checkpoint=ck)
        lines = []
        resumed = tiny_campaign(seeds=[0, 1], checkpoint=ck, resume=True,
                                log=lines.append)
        assert resumed == first
        assert any("already complete" in ln for ln in lines)

    def test_permanent_faults_via_zero_mttr(self):
        report = tiny_campaign(seeds=[0], mttr_frac=0.0)
        (row,) = report["topologies"]
        # permanent faults either complete degraded or fail typed; both
        # are legitimate availability samples
        assert row["completed"] + len(row["failed"]) == 1
        for rec in row["failed"]:
            assert "DegradedNetworkError" in rec["error"]["type"]

    def test_uplinks_dropped_on_baseline_families(self):
        report = tiny_campaign(seeds=[0], cables=1, uplinks=2)
        (row,) = report["topologies"]
        assert report["uplinks"] == 2
        # torus has no uplink ports: the cell still ran, cables-only
        assert row["completed"] + len(row["failed"]) == 1

    def test_validation_errors(self):
        with pytest.raises(ConfigError, match="at least one timeline seed"):
            tiny_campaign(seeds=[])
        with pytest.raises(ConfigError, match="distinct"):
            tiny_campaign(seeds=[1, 1])
        with pytest.raises(ConfigError, match="at least one transient"):
            tiny_campaign(cables=0)
        with pytest.raises(ConfigError, match="non-negative"):
            tiny_campaign(cables=-1)
        with pytest.raises(ConfigError, match="horizon_frac"):
            tiny_campaign(horizon_frac=0.0)
        with pytest.raises(ConfigError, match="bootstrap"):
            tiny_campaign(bootstrap=0)

    def test_table_renders_every_row(self):
        report = tiny_campaign(seeds=[0])
        table = campaign_table(report)
        assert "torus" in table
        assert "avail" in table


class TestCampaignCli:
    def test_campaign_smoke(self, tmp_path, capsys):
        report_path = tmp_path / "campaign.json"
        rc = main(["campaign", "--endpoints", "64",
                   "--workload", "allreduce", "--topologies", "torus",
                   "--seeds", "0:2", "--cables", "4",
                   "--bootstrap", "100", "--quiet",
                   "--report", str(report_path)])
        assert rc == 0
        report = json.loads(report_path.read_text())
        assert report["schema"] == CAMPAIGN_SCHEMA_VERSION
        assert report["seeds"] == [0, 1]
        out = capsys.readouterr().out
        assert "Availability campaign" in out

    def test_campaign_rejects_bad_seed_range(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "--endpoints", "64", "--workload",
                  "allreduce", "--seeds", "9:3", "--cables", "1"])
        assert exc.value.code == 2

    def test_campaign_rejects_zero_faults(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "--endpoints", "64", "--workload",
                  "allreduce", "--seeds", "0:2", "--cables", "0"])
        assert exc.value.code == 2

    def test_campaign_unknown_topology_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "--endpoints", "64", "--workload",
                  "allreduce", "--topologies", "hypercube",
                  "--seeds", "0:2", "--cables", "1", "--quiet"])
        assert exc.value.code == 2
        assert "no design-space topology" in capsys.readouterr().err

    def test_resilience_seed_range(self, capsys):
        rc = main(["resilience", "--endpoints", "64",
                   "--workload", "allreduce", "--topologies", "torus",
                   "--fail-links", "1", "--seeds", "0:3", "--keep-going",
                   "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seeds" in out

    def test_resilience_rejects_bad_seed_range(self):
        with pytest.raises(SystemExit) as exc:
            main(["resilience", "--endpoints", "64", "--workload",
                  "allreduce", "--fail-links", "1", "--seeds", "oops"])
        assert exc.value.code == 2
