"""Tests for the directed-link registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.linktable import LinkTable


class TestAdd:
    def test_ids_are_dense(self):
        t = LinkTable()
        assert t.add(0, 1, 1.0) == 0
        assert t.add(1, 0, 1.0) == 1
        assert t.num_links == 2

    def test_duplicate_rejected(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        with pytest.raises(TopologyError):
            t.add(0, 1, 1.0)

    def test_opposite_direction_is_distinct(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        t.add(1, 0, 2.0)  # fine

    def test_nonpositive_capacity_rejected(self):
        t = LinkTable()
        with pytest.raises(TopologyError):
            t.add(0, 1, 0.0)
        with pytest.raises(TopologyError):
            t.add(0, 1, -5.0)

    def test_add_duplex(self):
        t = LinkTable()
        a, b = t.add_duplex(3, 7, 2.0)
        assert t.endpoints_of(a) == (3, 7)
        assert t.endpoints_of(b) == (7, 3)

    def test_frozen_rejects_additions(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        t.freeze()
        with pytest.raises(TopologyError):
            t.add(1, 2, 1.0)


class TestLookup:
    def test_id_of(self):
        t = LinkTable()
        lid = t.add(2, 5, 1.0)
        assert t.id_of(2, 5) == lid
        assert t.has(2, 5) and not t.has(5, 2)

    def test_missing_raises(self):
        t = LinkTable()
        with pytest.raises(TopologyError):
            t.id_of(0, 1)
        with pytest.raises(TopologyError):
            t.endpoints_of(0)

    def test_path_to_links(self):
        t = LinkTable()
        a = t.add(0, 1, 1.0)
        b = t.add(1, 2, 1.0)
        assert t.path_to_links([0, 1, 2]) == [a, b]
        assert t.path_to_links([0]) == []

    def test_path_over_missing_link_raises(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        with pytest.raises(TopologyError):
            t.path_to_links([0, 1, 2])


class TestCapacities:
    def test_vector_matches_registration_order(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        t.add(1, 2, 3.0)
        assert np.allclose(t.capacities, [1.0, 3.0])

    def test_vector_is_immutable(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        with pytest.raises(ValueError):
            t.capacities[0] = 9.0

    def test_pairs_copy(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        pairs = t.pairs()
        pairs[(9, 9)] = 99
        assert not t.has(9, 9)


class TestEndpointViews:
    """sources/destinations must never expose mutable internal state."""

    def test_arrays_match_registration_order(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        t.add(3, 2, 1.0)
        assert t.sources.tolist() == [0, 3]
        assert t.destinations.tolist() == [1, 2]

    def test_views_are_read_only(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        for arr in (t.sources, t.destinations):
            with pytest.raises(ValueError):
                arr[0] = 99
        t.freeze()
        for arr in (t.sources, t.destinations):
            with pytest.raises(ValueError):
                arr[0] = 99

    def test_frozen_views_are_cached(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        t.freeze()
        assert t.sources is t.sources
        assert t.destinations is t.destinations

    def test_unfrozen_views_track_additions(self):
        t = LinkTable()
        t.add(0, 1, 1.0)
        before = t.sources
        t.add(5, 6, 1.0)
        assert before.tolist() == [0]       # a snapshot, not an alias
        assert t.sources.tolist() == [0, 5]
