"""Tests for the event-driven flow simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import simulate
from repro.engine.flows import FlowBuilder
from repro.errors import SimulationError
from repro.topology import TorusTopology
from repro.units import DEFAULT_LINK_CAPACITY as CAP


@pytest.fixture(scope="module")
def line() -> TorusTopology:
    """A 1-D mesh 0-1-2-3 (no wraparound ambiguity)."""
    return TorusTopology((4,), wraparound=False)


class TestSingleFlows:
    def test_uncontended_time_is_size_over_capacity(self, line):
        b = FlowBuilder(4)
        b.add_flow(0, 1, CAP)  # exactly one second of data
        r = simulate(line, b.build())
        assert r.makespan == pytest.approx(1.0)

    def test_path_length_does_not_change_time(self, line):
        # flow-level model: rate is the bottleneck share, not hop count
        b = FlowBuilder(4)
        b.add_flow(0, 3, CAP)
        assert simulate(line, b.build()).makespan == pytest.approx(1.0)

    def test_self_flow_is_zero_hop(self, line):
        # co-located tasks exchange data without touching the network (or
        # the NIC): the flow completes the instant it is released
        b = FlowBuilder(4)
        b.add_flow(2, 2, CAP / 2)
        r = simulate(line, b.build())
        assert r.makespan == 0.0
        assert r.completion_times[0] == r.start_times[0] == 0.0


class TestSharing:
    def test_two_flows_share_a_link(self, line):
        b = FlowBuilder(4)
        b.add_flow(0, 3, CAP)
        b.add_flow(0, 3, CAP)
        # both share the injection link at CAP/2
        r = simulate(line, b.build())
        assert r.makespan == pytest.approx(2.0)

    def test_disjoint_flows_run_concurrently(self, line):
        b = FlowBuilder(4)
        b.add_flow(0, 1, CAP)
        b.add_flow(2, 3, CAP)
        assert simulate(line, b.build()).makespan == pytest.approx(1.0)

    def test_freed_bandwidth_is_redistributed_exact(self, line):
        # one short and one long flow share a link; when the short one
        # finishes, the long one speeds up to full rate
        b = FlowBuilder(4)
        b.add_flow(0, 3, CAP)        # long: 1 s of data
        b.add_flow(0, 3, CAP / 2)    # short: 0.5 s of data
        r = simulate(line, b.build(), fidelity="exact")
        # both at CAP/2 until t=1 (short done), then long at CAP: total 1.5 s
        assert r.makespan == pytest.approx(1.5)

    def test_reduce_serialises_on_consumption_port(self, line):
        b = FlowBuilder(4)
        for t in (0, 1, 3):
            b.add_flow(t, 2, CAP)
        r = simulate(line, b.build())
        # 3 seconds of data through one 10 Gbps consumption link
        assert r.makespan == pytest.approx(3.0)


class TestDependencies:
    def test_chain_is_sequential(self, line):
        b = FlowBuilder(4)
        f1 = b.add_flow(0, 1, CAP)
        f2 = b.add_flow(1, 2, CAP, after=[f1])
        b.add_flow(2, 3, CAP, after=[f2])
        r = simulate(line, b.build())
        assert r.makespan == pytest.approx(3.0)

    def test_completion_respects_dag(self, line):
        b = FlowBuilder(4)
        fids = []
        prev = None
        for i in range(6):
            prev = b.add_flow(i % 3, (i + 1) % 3, CAP * 0.1,
                              after=[prev] if prev is not None else [])
            fids.append(prev)
        fs = b.build()
        r = simulate(line, fs)
        times = r.completion_times
        for pred in range(fs.num_flows):
            for succ in fs.successors(pred).tolist():
                assert times[succ] > times[pred] or \
                    times[succ] == pytest.approx(times[pred])

    def test_all_flows_complete(self, line):
        b = FlowBuilder(4)
        for i in range(10):
            b.add_flow(i % 4, (i + 1) % 4, CAP * (0.1 + 0.05 * i))
        r = simulate(line, b.build())
        assert not np.isnan(r.completion_times).any()
        assert r.makespan == pytest.approx(np.nanmax(r.completion_times))


class TestFidelity:
    def test_approx_close_to_exact(self, line):
        rng = np.random.default_rng(7)
        b = FlowBuilder(4)
        prev = {}
        for _ in range(120):
            s = int(rng.integers(4))
            d = int(rng.integers(4))
            after = [prev[s]] if s in prev else []
            prev[s] = b.add_flow(s, d, CAP * float(rng.uniform(0.01, 0.3)),
                                 after=after)
        fs = b.build()
        exact = simulate(line, fs, fidelity="exact").makespan
        approx = simulate(line, fs, fidelity="approx").makespan
        assert approx == pytest.approx(exact, rel=0.1)

    def test_unknown_fidelity_rejected(self, line):
        b = FlowBuilder(2)
        b.add_flow(0, 1, 1.0)
        with pytest.raises(SimulationError):
            simulate(line, b.build(), fidelity="heroic")


class TestPlacement:
    def test_identity_needs_enough_endpoints(self, line):
        b = FlowBuilder(8)
        b.add_flow(0, 7, 1.0)
        with pytest.raises(SimulationError):
            simulate(line, b.build())

    def test_custom_placement(self, line):
        b = FlowBuilder(2)
        b.add_flow(0, 1, CAP)
        placement = np.array([3, 0])
        r = simulate(line, b.build(), placement=placement)
        assert r.makespan == pytest.approx(1.0)

    def test_placement_shape_checked(self, line):
        b = FlowBuilder(2)
        b.add_flow(0, 1, 1.0)
        with pytest.raises(SimulationError):
            simulate(line, b.build(), placement=np.array([0]))

    def test_placement_range_checked(self, line):
        b = FlowBuilder(2)
        b.add_flow(0, 1, 1.0)
        with pytest.raises(SimulationError):
            simulate(line, b.build(), placement=np.array([0, 11]))


class TestEdgeCases:
    def test_empty_flowset(self, line):
        r = simulate(line, FlowBuilder(2).build())
        assert r.makespan == 0.0 and r.num_flows == 0

    def test_event_limit(self, line):
        b = FlowBuilder(4)
        prev = None
        for _ in range(10):
            prev = b.add_flow(0, 1, 1.0,
                              after=[prev] if prev is not None else [])
        with pytest.raises(SimulationError):
            simulate(line, b.build(), max_events=3)

    def test_capacity_scaling_halves_time(self):
        fast = TorusTopology((4,), wraparound=False, link_capacity=2 * CAP)
        slow = TorusTopology((4,), wraparound=False, link_capacity=CAP)
        b = FlowBuilder(4)
        b.add_flow(0, 3, CAP)
        b.add_flow(1, 3, CAP)
        fs = b.build()
        t_fast = simulate(fast, fs).makespan
        t_slow = simulate(slow, fs).makespan
        assert t_slow == pytest.approx(2 * t_fast)

    def test_result_metadata(self, line):
        b = FlowBuilder(4)
        b.add_flow(0, 1, CAP)
        r = simulate(line, b.build())
        assert r.num_flows == 1
        assert r.total_bits == CAP
        assert r.aggregate_throughput == pytest.approx(CAP)
        assert "makespan" in r.summary()


class TestZeroHopPlacements:
    """Oversubscribed placements: several tasks sharing one endpoint."""

    def test_duplicate_endpoint_placement_end_to_end(self, line):
        # both tasks of flow 0 land on endpoint 0 -> zero-hop, instant;
        # the downstream real flow is released at time zero
        b = FlowBuilder(3)
        z = b.add_flow(0, 1, CAP)
        b.add_flow(1, 2, CAP, after=[z])
        r = simulate(line, b.build(), placement=np.array([0, 0, 3]))
        assert r.completion_times[0] == r.start_times[0] == 0.0
        assert r.start_times[1] == 0.0
        assert r.makespan == pytest.approx(1.0)

    def test_zero_hop_completes_at_release_time(self, line):
        # a zero-hop flow released mid-run completes exactly then
        b = FlowBuilder(4)
        first = b.add_flow(0, 1, CAP)          # finishes at t=1
        b.add_flow(2, 3, CAP, after=[first])   # co-located -> instant
        r = simulate(line, b.build(), placement=np.array([0, 1, 2, 2]))
        assert r.start_times[1] == pytest.approx(1.0)
        assert r.completion_times[1] == pytest.approx(1.0)
        assert r.makespan == pytest.approx(1.0)

    def test_zero_hop_chain_cascades(self, line):
        # a whole chain of co-located flows collapses at its release time
        b = FlowBuilder(4)
        prev = b.add_flow(0, 1, CAP)
        for _ in range(5):
            prev = b.add_flow(1, 1, CAP, after=[prev])
        r = simulate(line, b.build(), placement=np.array([1, 1, 2, 3]))
        assert r.makespan == 0.0
        assert (r.completion_times == 0.0).all()

    @pytest.mark.parametrize("fidelity", ["exact", "approx"])
    def test_oversubscribed_collective(self, fidelity):
        # the ISSUE's headline scenario: a collective placed with more
        # tasks than endpoints used to crash the allocator
        from repro.topology import build as build_topology
        from repro.workloads import build as build_workload

        topo = build_topology("fattree", 8)
        wl = build_workload("allreduce", 16)
        placement = np.arange(16, dtype=np.int64) % 8  # two tasks/endpoint
        r = simulate(topo, wl.build(), placement=placement,
                     fidelity=fidelity)
        assert r.makespan > 0
        assert not np.isnan(r.completion_times).any()

    def test_route_cache_shared_across_calls(self, line):
        # an externally supplied route cache is filled and reused
        b = FlowBuilder(4)
        b.add_flow(0, 3, CAP)
        cache: dict = {}
        first = simulate(line, b.build(), route_cache=cache)
        assert (0, 3) in cache
        again = simulate(line, b.build(), route_cache=cache)
        assert again.makespan == first.makespan


class TestPlacementEdgeCases:
    """Regression tests for the zero-length placement and the warning-free
    non-finite deadline guard."""

    def test_zero_task_placement_is_vacuously_valid(self, line):
        # zero tasks used to crash _check_placement with numpy's opaque
        # "zero-size array to reduction operation" ValueError
        from dataclasses import replace

        from repro.engine.simulator import _check_placement

        empty = np.empty(0, dtype=np.int64)
        flows = replace(
            FlowBuilder(1).build(), num_tasks=0,
            src=empty, dst=empty, size=np.empty(0), weight=np.empty(0),
            indegree=empty)
        out = _check_placement(line, flows, empty)
        assert out.shape == (0,)
        # and the full simulate() path stays on the empty-workload exit
        r = simulate(line, flows, placement=empty)
        assert r.makespan == 0.0 and r.num_flows == 0

    def test_zero_rate_guard_emits_no_runtime_warning(self, line):
        # the non-finite deadline check must fire as a typed error without
        # numpy divide/invalid RuntimeWarnings escaping first
        import warnings

        from repro.engine.active import ActiveSet

        def zero_allocate(self, stats=None):
            if stats is not None:
                stats["iterations"] = 0
                stats["warm"] = False
            self._rates[:self._m] = 0.0
            return self._rates[:self._m]

        b = FlowBuilder(4)
        b.add_flow(0, 1, CAP)
        flows = b.build()
        orig = ActiveSet.allocate
        ActiveSet.allocate = zero_allocate
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                with pytest.raises(SimulationError, match="non-finite"):
                    simulate(line, flows)
        finally:
            ActiveSet.allocate = orig
