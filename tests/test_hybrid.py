"""Tests for subtorus plans, uplink placement and nested routing."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.routing import dor
from repro.topology import NestGHC, NestTree, SubtorusPlan


class TestSubtorusPlan:
    @pytest.mark.parametrize("t,u", [(2, 1), (2, 2), (2, 4), (2, 8),
                                     (4, 1), (4, 2), (4, 4), (4, 8),
                                     (8, 1), (8, 2), (8, 4), (8, 8)])
    def test_uplink_count_matches_density(self, t, u):
        plan = SubtorusPlan(t, u)
        assert len(plan.uplinked) == t ** 3 // u

    def test_invalid_density(self):
        with pytest.raises(TopologyError):
            SubtorusPlan(2, 3)

    def test_odd_side_rejected_for_sparse(self):
        with pytest.raises(TopologyError):
            SubtorusPlan(3, 2)
        SubtorusPlan(3, 1)  # u=1 allows any side

    def test_u1_everyone_uplinked(self):
        plan = SubtorusPlan(2, 1)
        assert plan.uplinked == list(range(8))
        assert plan.designated == list(range(8))

    def test_u2_even_x_rule(self):
        plan = SubtorusPlan(4, 2)
        for local in plan.uplinked:
            x, _, _ = dor.index_to_coord(local, plan.dims)
            assert x % 2 == 0

    @pytest.mark.parametrize("t", [2, 4, 8])
    def test_u2_designated_one_x_hop(self, t):
        plan = SubtorusPlan(t, 2)
        assert plan.max_hops_to_uplink() == 1
        for local, des in enumerate(plan.designated):
            lx, ly, lz = dor.index_to_coord(local, plan.dims)
            dx, dy, dz = dor.index_to_coord(des, plan.dims)
            assert (ly, lz) == (dy, dz)        # only the X dim moves
            assert abs(lx - dx) <= 1

    @pytest.mark.parametrize("t", [2, 4, 8])
    def test_u4_opposite_vertices_within_one_hop(self, t):
        plan = SubtorusPlan(t, 4)
        assert plan.max_hops_to_uplink() == 1   # paper Fig. 3c
        for local in plan.uplinked:
            x, y, z = dor.index_to_coord(local, plan.dims)
            assert (x % 2, y % 2, z % 2) in ((0, 0, 0), (1, 1, 1))

    @pytest.mark.parametrize("t", [2, 4, 8])
    def test_u8_subgrid_roots_within_three_hops(self, t):
        plan = SubtorusPlan(t, 8)
        assert plan.max_hops_to_uplink() == 3   # corner of a 2x2x2 subgrid
        for local in plan.uplinked:
            coord = dor.index_to_coord(local, plan.dims)
            assert all(c % 2 == 0 for c in coord)

    def test_designated_is_uplinked(self):
        for u in (1, 2, 4, 8):
            plan = SubtorusPlan(4, u)
            uplinked = set(plan.uplinked)
            assert all(d in uplinked for d in plan.designated)

    def test_designated_stays_in_subgrid(self):
        plan = SubtorusPlan(8, 8)
        for local, des in enumerate(plan.designated):
            lc = dor.index_to_coord(local, plan.dims)
            dc = dor.index_to_coord(des, plan.dims)
            assert all(l - l % 2 == d - d % 2
                       for l, d in zip(lc, dc))

    def test_intra_diameter(self):
        assert SubtorusPlan(2, 1).intra_diameter() == 3
        assert SubtorusPlan(4, 1).intra_diameter() == 6
        assert SubtorusPlan(8, 1).intra_diameter() == 12


class TestNestedConstruction:
    def test_endpoint_count_must_tile(self):
        with pytest.raises(TopologyError):
            NestTree(100, 2, 2)  # 100 not a multiple of 8

    def test_connected(self, small_nesttree, small_nestghc):
        assert nx.is_connected(small_nesttree.to_networkx())
        assert nx.is_connected(small_nestghc.to_networkx())

    def test_port_bijection(self, small_nesttree):
        topo = small_nesttree
        ports = set()
        for e in range(topo.num_endpoints):
            local = e % topo.plan.nodes
            if local in topo.plan.uplink_rank:
                ports.add(topo.port_of(e))
            else:
                with pytest.raises(TopologyError):
                    topo.port_of(e)
        assert ports == set(range(topo.fabric.num_ports))

    def test_uplinked_endpoints_have_access_links(self, small_nesttree):
        topo = small_nesttree
        for e in range(topo.num_endpoints):
            local = e % topo.plan.nodes
            sw = topo._switch_offset + topo.fabric.port_switch(
                topo.port_of(e)) if local in topo.plan.uplink_rank else None
            if sw is not None:
                assert topo.links.has(e, sw) and topo.links.has(sw, e)


class TestNestedRouting:
    def test_intra_subtorus_never_leaves(self, small_nesttree):
        topo = small_nesttree
        nodes = topo.plan.nodes
        for s in range(3):
            base = s * nodes
            for a in range(nodes):
                for b in range(nodes):
                    path = topo.vertex_path(base + a, base + b)
                    assert all(base <= v < base + nodes for v in path)

    def test_inter_subtorus_crosses_fabric_once(self, small_nesttree):
        topo = small_nesttree
        path = topo.vertex_path(0, topo.num_endpoints - 1)
        switch_spans = []
        in_switches = False
        for v in path:
            is_switch = v >= topo.num_endpoints
            if is_switch and not in_switches:
                switch_spans.append(1)
            elif is_switch:
                switch_spans[-1] += 1
            in_switches = is_switch
        assert len(switch_spans) == 1

    @pytest.mark.parametrize("fixture", ["small_nesttree", "small_nestghc"])
    def test_all_routes_are_valid_walks(self, fixture, request):
        topo = request.getfixturevalue(fixture)
        n = topo.num_endpoints
        for src in range(0, n, 7):
            for dst in range(0, n, 5):
                p = topo.vertex_path(src, dst)
                assert p[0] == src and p[-1] == dst
                for a, b in zip(p, p[1:]):
                    assert topo.links.has(a, b)
                assert len(set(p)) == len(p)

    def test_inter_route_goes_via_designated_uplinks(self, small_nesttree):
        topo = small_nesttree
        src, dst = 1, topo.num_endpoints - 1  # different subtori
        path = topo.vertex_path(src, dst)
        us = topo.designated_uplink(src)
        ud = topo.designated_uplink(dst)
        assert us in path and ud in path

    def test_routing_diameter_matches_brute_force(self):
        for topo in (NestTree(64, 2, 2), NestTree(64, 2, 8),
                     NestGHC(64, 2, 4, ports_per_switch=4, ghc_dims=2)):
            brute = max(topo.hops(s, d)
                        for s in range(topo.num_endpoints)
                        for d in range(topo.num_endpoints) if s != d)
            assert topo.routing_diameter() == brute

    def test_single_subtorus_degenerates_to_torus_diameter(self):
        topo = NestTree(8, 2, 1)  # one subtorus; upper tier unused intra
        assert topo.routing_diameter() == 3
