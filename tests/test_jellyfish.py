"""Tests for the Jellyfish comparator topology."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology.jellyfish import JellyfishTopology


@pytest.fixture(scope="module")
def jf():
    return JellyfishTopology(16, 4, 4, seed=3)  # 64 endpoints


class TestConstruction:
    def test_counts(self, jf):
        assert jf.num_endpoints == 64
        assert jf.num_switches == 16
        # 16 switches x degree 4 / 2 cables + 64 access cables
        assert jf.num_network_links == 2 * (32 + 64)

    def test_regularity(self, jf):
        g = jf.to_networkx()
        for sw in range(64, 80):
            assert g.degree(sw) == 4 + 4  # fabric + endpoints

    def test_connected(self, jf):
        assert nx.is_connected(jf.to_networkx())

    def test_seed_changes_wiring(self):
        a = JellyfishTopology(16, 4, 1, seed=1)
        b = JellyfishTopology(16, 4, 1, seed=2)
        assert a.links.pairs() != b.links.pairs()

    def test_same_seed_same_wiring(self):
        a = JellyfishTopology(16, 4, 1, seed=5)
        b = JellyfishTopology(16, 4, 1, seed=5)
        assert a.links.pairs() == b.links.pairs()

    def test_validation(self):
        with pytest.raises(TopologyError):
            JellyfishTopology(8, 9, 1)     # degree >= switches
        with pytest.raises(TopologyError):
            JellyfishTopology(5, 3, 1)     # odd degree sum
        with pytest.raises(TopologyError):
            JellyfishTopology(1, 2, 1)


class TestRouting:
    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_routes_are_valid_walks(self, src, dst):
        topo = JellyfishTopology(16, 4, 4, seed=3)
        p = topo.vertex_path(src, dst)
        assert p[0] == src and p[-1] == dst
        for a, b in zip(p, p[1:]):
            assert topo.links.has(a, b)
        assert len(set(p)) == len(p)

    def test_routing_is_minimal(self, jf):
        g = jf.to_networkx()
        for src in (0, 17, 42):
            lengths = nx.single_source_shortest_path_length(g, src)
            for dst in range(64):
                if dst != src:
                    assert jf.hops(src, dst) == lengths[dst]

    def test_routing_is_deterministic(self, jf):
        assert jf.vertex_path(0, 63) == jf.vertex_path(0, 63)

    def test_diameter_matches_brute_force(self, jf):
        brute = max(jf.hops(s, d) for s in range(64) for d in range(64)
                    if s != d)
        assert jf.routing_diameter() == brute

    def test_random_graphs_have_low_diameter(self):
        """The Jellyfish selling point: random wiring stays within one hop
        of the Moore bound (ceil(log_{d-1} n) = 3 for 64 switches, d=6)."""
        topo = JellyfishTopology(64, 6, 1, seed=0)
        assert topo.routing_diameter() <= 4 + 2
