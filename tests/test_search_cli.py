"""CLI tests for ``repro optimize``, hybrid validation, and cost overrides.

The kill/resume test runs ``repro optimize`` as a real subprocess,
SIGKILLs it mid-search, and restarts with ``--resume``: the rerun must
finish from the sweep checkpoints and print the same front as an
uninterrupted run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.search.report import validate_report_file

REPO = Path(__file__).resolve().parent.parent
OPTIMIZE_64 = ["optimize", "--endpoints", "64", "--budget", "8",
               "--seed", "7", "--workloads", "reduce", "permutation",
               "--quiet"]


def run_optimize(capsys, *extra: str) -> str:
    assert main([*OPTIMIZE_64, *extra]) == 0
    return capsys.readouterr().out


class TestHybridValidation:
    """Satellite: bad (t, u) fails with exit code 2 and the ranges listed."""

    @pytest.mark.parametrize("t,u", [("3", "2"),   # odd t with u>1
                                     ("2", "3"),   # u not a power of two
                                     ("0", "1"),   # t not positive
                                     ("8", "2")])  # 8^3 does not tile 64
    def test_bad_hybrid_params_exit_2(self, capsys, t, u):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--endpoints", "64", "--topology", "nesttree",
                  "--t", t, "--u", u, "--workload", "reduce"])
        assert exc.value.code == 2
        assert "valid hybrid parameters" in capsys.readouterr().err

    def test_hybrid_needs_both_t_and_u(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "--endpoints", "64", "--topology", "nesttree",
                  "--t", "2", "--workload", "reduce"])
        assert exc.value.code == 2

    def test_spec_level_validation_is_typed(self):
        from repro.core.config import TopologySpec
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="even subtorus side"):
            TopologySpec("nesttree", {"t": 3, "u": 2})
        with pytest.raises(ConfigError, match="does not tile"):
            TopologySpec("nesttree", {"t": 4, "u": 1}).validate_for(100)


class TestCostOverrides:
    """Satellite: --switch-cost/--switch-power thread the cost model."""

    def test_table2_override_scales_linearly(self, capsys):
        assert main(["table2", "--endpoints", "4096"]) == 0
        default = capsys.readouterr().out
        assert main(["table2", "--endpoints", "4096",
                     "--switch-cost", "1.5"]) == 0
        doubled = capsys.readouterr().out
        assert default != doubled
        # fattree reference line: cost exactly doubles, power unchanged
        def overheads(text):
            line = next(l for l in text.splitlines()
                        if l.startswith("Reference:"))
            return [float(f.lstrip("+").rstrip("%,"))
                    for f in line.split() if f.startswith("+")]
        d_cost, d_power = overheads(default)
        o_cost, o_power = overheads(doubled)
        assert o_cost == pytest.approx(2 * d_cost)
        assert o_power == pytest.approx(d_power)

    def test_negative_coefficient_exit_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table2", "--switch-cost", "-1"])
        assert exc.value.code == 2

    def test_optimize_report_records_the_override(self, capsys, tmp_path):
        report = tmp_path / "r.json"
        run_optimize(capsys, "--switch-cost", "1.5", "--switch-power", "0.5",
                     "--report", str(report))
        doc = validate_report_file(report)
        assert doc["meta"]["cost_model"] == {"switch_cost": 1.5,
                                             "switch_power": 0.5}
        # overriding the model moves the cost objective of every
        # non-baseline front member by exactly 2x
        default = tmp_path / "default.json"
        run_optimize(capsys, "--report", str(default))
        by_label = {r["label"]: r for r in validate_report_file(default)["front"]}
        for row in doc["front"]:
            if row["baseline"] or row["label"] not in by_label:
                continue
            assert row["objectives"]["cost"] == pytest.approx(
                2 * by_label[row["label"]]["objectives"]["cost"])


class TestOptimizeCli:
    def test_prints_front_and_summary(self, capsys):
        out = run_optimize(capsys)
        assert "Pareto front @ 64 endpoints" in out
        assert "fattree" in out and "torus" in out
        assert "rank2" in out

    def test_metrics_stream_per_rank(self, capsys, tmp_path):
        from repro.obs import validate_metrics_file
        run_optimize(capsys, "--metrics", str(tmp_path / "search"))
        metrics = tmp_path / "search.rank2.metrics.jsonl"
        assert metrics.exists()
        # one schema-valid obs record per full-fidelity evaluation cell
        assert validate_metrics_file(metrics) >= 2

    def test_stdout_and_report_are_deterministic(self, capsys, tmp_path):
        r1, r2 = tmp_path / "a.json", tmp_path / "b.json"
        out1 = run_optimize(capsys, "--report", str(r1))
        out2 = run_optimize(capsys, "--report", str(r2))
        assert out1 == out2
        assert r1.read_bytes() == r2.read_bytes()

    @pytest.mark.parametrize("argv,hint", [
        (["optimize", "--budget", "0"], "budget"),
        (["optimize", "--strategy", "bogus"], "strategy"),
        (["optimize", "--workloads", "nosuch"], "workload"),
        (["optimize", "--endpoints", "64", "--pilot-endpoints", "512"],
         "pilot"),
        (["optimize", "--fault-levels", "-1"], "fault"),
        (["optimize", "--resume"], "checkpoint"),
    ])
    def test_bad_arguments_exit_2(self, capsys, argv, hint):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert hint in capsys.readouterr().err.lower()


class TestKillResume:
    """Satellite: a killed search resumes from its sweep checkpoints."""

    CMD = ["optimize", "--endpoints", "512", "--budget", "12", "--seed", "3",
           "--workloads", "reduce", "permutation", "--quiet"]

    def spawn(self, checkpoint: Path, report: Path, *extra: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *self.CMD,
             "--checkpoint", str(checkpoint), "--report", str(report),
             *extra],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True)

    def test_sigkilled_search_resumes_to_the_same_front(self, tmp_path):
        checkpoint = tmp_path / "search"
        rank2 = tmp_path / "search.rank2.jsonl"
        report = tmp_path / "report.json"

        proc = self.spawn(checkpoint, report)
        # wait for full-fidelity cells to start landing, then kill
        deadline = time.monotonic() + 120
        while (time.monotonic() < deadline and proc.poll() is None
               and not (rank2.exists()
                        and len(rank2.read_text().splitlines()) >= 2)):
            time.sleep(0.02)
        interrupted = proc.poll() is None
        if interrupted:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
        assert interrupted, "search finished before it could be killed"
        assert not report.exists()
        survivors = rank2.read_text()
        assert len(survivors.splitlines()) >= 2  # meta + >=1 record

        resumed = self.spawn(checkpoint, report, "--resume")
        out, _ = resumed.communicate(timeout=600)
        assert resumed.returncode == 0
        # pre-kill records were reused verbatim, not re-simulated
        assert rank2.read_text().startswith(survivors)
        doc = validate_report_file(report)

        # an uninterrupted run produces the identical report
        clean = self.spawn(tmp_path / "clean", tmp_path / "clean.json")
        clean_out, _ = clean.communicate(timeout=600)
        assert clean.returncode == 0
        assert out == clean_out
        assert doc == json.loads((tmp_path / "clean.json").read_text())
