"""Tests for the generalised fattree fabric and topology."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.routing import updown
from repro.topology import FatTreeFabric, FatTreeTopology
from repro.topology.planner import fattree_arities


class TestFabricStructure:
    def test_switch_indices_are_dense_and_unique(self):
        fabric = FatTreeFabric((4, 4, 2))
        seen = set()
        for level in range(1, 4):
            group = 1
            for k in fabric.arities[:level]:
                group *= k
            per_subtree = group // fabric.arities[level - 1]
            for subtree in range(fabric.num_ports // group):
                for dv in range(per_subtree):
                    sw = updown.Switch(level, subtree,
                                       fabric._digits_of(dv, level))
                    idx = fabric.switch_index(sw)
                    assert 0 <= idx < fabric.num_switches
                    seen.add(idx)
        assert len(seen) == fabric.num_switches

    def test_invalid_arities(self):
        with pytest.raises(TopologyError):
            FatTreeFabric((4, 1))
        with pytest.raises(TopologyError):
            FatTreeFabric(())

    def test_port_switch(self):
        fabric = FatTreeFabric((4, 2))
        assert fabric.port_switch(0) == fabric.port_switch(3)
        assert fabric.port_switch(3) != fabric.port_switch(4)
        with pytest.raises(TopologyError):
            fabric.port_switch(8)


class TestTopologyStructure:
    def test_counts(self, small_fattree):
        assert small_fattree.num_endpoints == 32
        assert small_fattree.num_switches == updown.switch_count((4, 4, 2))
        # duplex links: 32 access + (ports * (stages-1)) inter-switch
        assert small_fattree.num_network_links == 2 * (32 + 32 * 2)

    def test_connected(self, small_fattree):
        assert nx.is_connected(small_fattree.to_networkx())

    def test_switch_degrees_non_blocking(self):
        topo = FatTreeTopology((4, 4, 4))
        g = topo.to_networkx()
        for sw in range(topo.num_endpoints,
                        topo.num_endpoints + topo.num_switches):
            # every non-top switch has k down + k up; top has k down
            assert g.degree(sw) in (8, 4)

    def test_for_ports_uses_planner(self):
        topo = FatTreeTopology.for_ports(64)
        assert topo.num_endpoints == 64
        assert topo.fabric.arities == fattree_arities(64)


class TestRouting:
    @given(st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=100, deadline=None)
    def test_route_is_valid_walk(self, src, dst):
        topo = FatTreeTopology((4, 4, 2))
        p = topo.vertex_path(src, dst)
        assert p[0] == src and p[-1] == dst
        for a, b in zip(p, p[1:]):
            assert topo.links.has(a, b)
        assert len(set(p)) == len(p)

    def test_length_is_twice_nca_level(self, small_fattree):
        for src, dst in [(0, 1), (0, 4), (0, 16), (31, 0)]:
            assert small_fattree.hops(src, dst) == \
                2 * updown.nca_level(src, dst, (4, 4, 2))

    def test_routing_is_minimal(self, small_fattree):
        g = small_fattree.to_networkx()
        for src in range(0, 32, 7):
            lengths = nx.single_source_shortest_path_length(g, src)
            for dst in range(32):
                if dst != src:
                    assert small_fattree.hops(src, dst) == lengths[dst]

    def test_diameter(self, small_fattree):
        assert small_fattree.routing_diameter() == 6
        assert max(small_fattree.hops(s, d)
                   for s in range(32) for d in range(32) if s != d) == 6

    def test_dmodk_spreads_paths(self):
        # flows to different destinations from one source should climb
        # through different level-2 switches (d-mod-k balancing)
        topo = FatTreeTopology((4, 4))
        ups = {topo.vertex_path(0, dst)[2] for dst in range(4, 16)}
        assert len(ups) == 4  # all four up-ports used


class TestFabricLinkCount:
    @pytest.mark.parametrize("arities", [(2, 2), (4, 2), (4, 4, 2), (3, 3, 3)])
    def test_interswitch_links(self, arities):
        from repro.topology.linktable import LinkTable

        fabric = FatTreeFabric(arities)
        table = LinkTable()
        fabric.build_links(table, 0, 1.0)
        # each of the n-1 stage boundaries carries `ports` duplex links
        expected = 2 * fabric.num_ports * (len(arities) - 1)
        assert table.num_links == expected
