"""Tests for the sizing planner."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import planner


class TestPrimeFactors:
    def test_known(self):
        assert planner.prime_factors(360) == [2, 2, 2, 3, 3, 5]
        assert planner.prime_factors(1) == []
        assert planner.prime_factors(97) == [97]

    def test_invalid(self):
        with pytest.raises(TopologyError):
            planner.prime_factors(0)

    @given(st.integers(1, 100_000))
    def test_product_reconstructs(self, n):
        assert math.prod(planner.prime_factors(n)) == n


class TestBalancedFactors:
    @given(st.integers(1, 1_000_000), st.integers(1, 5))
    def test_product_and_order(self, n, parts):
        factors = planner.balanced_factors(n, parts)
        assert len(factors) == parts
        assert math.prod(factors) == n
        assert list(factors) == sorted(factors)

    def test_powers_of_two_are_balanced(self):
        assert planner.balanced_factors(4096, 3) == (16, 16, 16)
        assert planner.balanced_factors(131072, 3) == (32, 64, 64)

    def test_invalid_parts(self):
        with pytest.raises(TopologyError):
            planner.balanced_factors(8, 0)


class TestFatTreeArities:
    def test_paper_rule_full_scale(self):
        # reproduces Table 2: 131072 ports -> (32,32,128), 9216 switches
        assert planner.fattree_arities(131072) == (32, 32, 128)
        assert planner.fattree_arities(65536) == (32, 32, 64)
        assert planner.fattree_arities(32768) == (32, 32, 32)
        assert planner.fattree_arities(16384) == (32, 32, 16)

    def test_balanced_fallback(self):
        assert planner.fattree_arities(4096) == (16, 16, 16)
        assert planner.fattree_arities(512) == (8, 8, 8)

    def test_small_port_counts_drop_stages(self):
        assert planner.fattree_arities(4) == (2, 2)
        assert planner.fattree_arities(2) == (2,)

    def test_too_small(self):
        with pytest.raises(TopologyError):
            planner.fattree_arities(1)

    @given(st.integers(1, 12))
    def test_power_of_two_ports_always_plan(self, e):
        ports = 2 ** e
        arities = planner.fattree_arities(ports)
        assert math.prod(arities) == ports
        assert all(k >= 2 for k in arities)


class TestGHCRadices:
    def test_four_dims_default(self):
        assert planner.ghc_radices(8192) == (8, 8, 8, 16)

    def test_small_counts_drop_dims(self):
        assert planner.ghc_radices(4) == (2, 2)
        assert planner.ghc_radices(2) == (2,)

    def test_single_vertex_degenerates(self):
        assert planner.ghc_radices(1) == ()

    def test_invalid(self):
        with pytest.raises(TopologyError):
            planner.ghc_radices(0)

    @given(st.integers(2, 100_000))
    def test_product(self, n):
        radices = planner.ghc_radices(n)
        assert math.prod(radices) == n
        assert all(k >= 2 for k in radices)


class TestTorusDims:
    def test_full_scale(self):
        assert planner.torus_dims(131072) == (32, 64, 64)

    def test_rejects_unbalanced(self):
        with pytest.raises(TopologyError):
            planner.torus_dims(7, 3)  # prime: cannot fill 3 dims
