"""Unit and property tests for UP*/DOWN* routing on generalised fattrees."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import updown

arities_st = st.lists(st.integers(min_value=2, max_value=5),
                      min_size=1, max_size=3)


class TestCounts:
    def test_leaf_count(self):
        assert updown.leaf_count((4, 4, 2)) == 32

    def test_switch_count_kary(self):
        # classic k-ary n-tree: n * k^(n-1)
        assert updown.switch_count((4, 4, 4)) == 3 * 16

    def test_switch_count_paper_full_scale(self):
        # Table 2 reference: (32, 32, 128) -> 9216 switches
        assert updown.switch_count((32, 32, 128)) == 9216

    def test_switches_at_level(self):
        assert updown.switches_at_level((4, 2), 1) == 2
        assert updown.switches_at_level((4, 2), 2) == 4

    def test_invalid_level(self):
        with pytest.raises(RoutingError):
            updown.switches_at_level((4, 2), 3)


class TestDigits:
    def test_known(self):
        assert updown.leaf_digits(5, (4, 2)) == (1, 1)

    def test_out_of_range(self):
        with pytest.raises(RoutingError):
            updown.leaf_digits(8, (4, 2))

    @given(arities_st, st.data())
    def test_roundtrip(self, arities, data):
        total = updown.leaf_count(arities)
        leaf = data.draw(st.integers(0, total - 1))
        digits = updown.leaf_digits(leaf, arities)
        value = 0
        for d, k in zip(reversed(digits), reversed(arities)):
            value = value * k + d
        assert value == leaf


class TestNCA:
    def test_same_level1_group(self):
        assert updown.nca_level(0, 3, (4, 4, 2)) == 1

    def test_same_level2_subtree(self):
        assert updown.nca_level(0, 4, (4, 4, 2)) == 2

    def test_top_level(self):
        assert updown.nca_level(0, 16, (4, 4, 2)) == 3

    def test_identical_leaves_rejected(self):
        with pytest.raises(RoutingError):
            updown.nca_level(3, 3, (4, 4))

    @given(arities_st, st.data())
    @settings(max_examples=150)
    def test_definition(self, arities, data):
        total = updown.leaf_count(arities)
        a = data.draw(st.integers(0, total - 1))
        b = data.draw(st.integers(0, total - 1).filter(lambda x: x != a))
        m = updown.nca_level(a, b, arities)
        group = math.prod(arities[:m])
        assert a // group == b // group
        if m > 1:
            smaller = math.prod(arities[:m - 1])
            assert a // smaller != b // smaller


class TestSwitchPath:
    @given(arities_st, st.data())
    @settings(max_examples=150)
    def test_path_structure(self, arities, data):
        total = updown.leaf_count(arities)
        a = data.draw(st.integers(0, total - 1))
        b = data.draw(st.integers(0, total - 1).filter(lambda x: x != a))
        path = updown.switch_path(a, b, arities)
        m = updown.nca_level(a, b, arities)
        # 2m-1 switches: up m, down m-1
        assert len(path) == 2 * m - 1
        # ends attach to the right leaves
        assert path[0] == updown.Switch(1, a // arities[0], ())
        assert path[-1] == updown.Switch(1, b // arities[0], ())
        # levels rise to the NCA then fall
        levels = [s.level for s in path]
        assert levels == list(range(1, m + 1)) + list(range(m - 1, 0, -1))
        # every consecutive pair is an existing fattree link
        for x, y in zip(path, path[1:]):
            assert updown.validate_adjacent(x, y, arities), (x, y)

    def test_path_lengths(self):
        assert updown.path_lengths(0, 1, (4, 4)) == 2
        assert updown.path_lengths(0, 4, (4, 4)) == 4


class TestValidateAdjacent:
    def test_rejects_same_level(self):
        a = updown.Switch(1, 0, ())
        b = updown.Switch(1, 1, ())
        assert not updown.validate_adjacent(a, b, (4, 4))

    def test_rejects_wrong_subtree(self):
        lo = updown.Switch(1, 0, ())
        hi = updown.Switch(2, 1, (0,))
        assert not updown.validate_adjacent(lo, hi, (4, 4))

    def test_accepts_every_up_port(self):
        lo = updown.Switch(1, 5, ())
        for x in range(4):
            hi = updown.Switch(2, 5 // 4, (x,))
            assert updown.validate_adjacent(lo, hi, (4, 4))

    def test_rejects_port_out_of_range(self):
        lo = updown.Switch(1, 0, ())
        hi = updown.Switch(2, 0, (4,))
        assert not updown.validate_adjacent(lo, hi, (4, 4))
