"""Regression tests for the PR-10 service-layer fixes.

Four bugs, each pinned by a test that failed before the fix:

1. ``Broker._settle`` popped the future of an *errored* cell, so a
   client polling after settlement got a 404 instead of its error
   document — errors are never stored, so nothing else could answer.
   Fixed with a bounded LRU of settled error documents.
2. ``Broker.submit`` tested store membership by file existence; a
   corrupt on-disk record then surfaced as a ``KeyError`` (an HTTP 500)
   at result time.  Fixed by *reading* the record at submit, so
   corruption degrades to a re-simulation.
3. A negative ``Content-Length`` sailed past the size cap into
   ``readexactly`` and 500'd; non-numeric variants that ``int()``
   happens to accept (``+5``, ``1_0``) and conflicting duplicates were
   just as mis-handled.  All are 400s now.
4. ``FairScheduler`` kept every tenant's empty lane forever, so a
   long-lived service scanned an ever-growing dict per dequeue; and
   ``ResultStore`` never cleaned temp files crashed writers left
   behind.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
import warnings

import pytest

from repro.service import Broker, ResultStore
from repro.service.scheduler import FairScheduler
from repro.service.store import ResultStoreWarning
from tests.test_service_broker import ENDPOINTS, make_cell, run
from tests.test_service_http import ServerThread


class TestErrorDocRetention:
    """Bug 1: errored digests must stay answerable after settlement."""

    def test_poll_after_error_settle_over_http(self, tmp_path):
        # cell_timeout ~0 deterministically fails the cell after it runs
        with ServerThread(tmp_path / "store",
                          cell_timeout=1e-12) as client:
            status, doc = client.submit([{
                "workload": "reduce", "tasks": 16,
                "topology": {"family": "fattree", "params": {}},
            }], wait=True)
            assert status == 200
            (settled,) = doc["results"]
            assert settled["status"] == "error"
            digest = settled["digest"]
            # the regression: this poll arrives *after* the batch
            # settled and the future is gone — it used to 404
            status, doc = client.result(digest)
            assert status == 200
            assert doc["status"] == "error"
            assert doc["digest"] == digest
            assert doc["error"] == settled["error"]

    def test_peek_and_result_serve_retained_error(self, tmp_path):
        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS,
                            cell_timeout=1e-12)
            await broker.start()
            digest = broker.submit("a", make_cell())
            first = await broker.result(digest)
            # settled: the future is gone, only the LRU can answer
            assert digest not in broker._futures
            peeked = broker.peek(digest)
            again = await broker.result(digest)
            await broker.close()
            return first, peeked, again

        first, peeked, again = run(main())
        assert first["status"] == "error"
        assert peeked == first
        assert again == first

    def test_resubmission_evicts_error_and_retries(self, tmp_path):
        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS,
                            cell_timeout=1e-12)
            await broker.start()
            digest = broker.submit("a", make_cell())
            doc = await broker.result(digest)
            assert doc["status"] == "error"
            # failures may be transient: the retry must re-enqueue, not
            # answer from the cached error
            assert broker.submit("a", make_cell()) == digest
            assert digest in broker._futures
            assert digest not in broker._errors
            retry = await broker.result(digest)
            await broker.close()
            return broker.counters, retry

        counters, retry = run(main())
        assert counters["enqueued"] == 2
        assert retry["status"] == "error"  # still failing, but freshly

    def test_error_cache_is_bounded_lru(self, tmp_path, monkeypatch):
        import repro.service.broker as broker_mod
        monkeypatch.setattr(broker_mod, "ERROR_DOCS_MAX", 2)

        async def main():
            broker = Broker(ResultStore(tmp_path), endpoints=ENDPOINTS,
                            cell_timeout=1e-12)
            await broker.start()
            digests = [broker.submit("a", make_cell(tasks=t))
                       for t in (4, 8, 16)]
            for d in digests:
                await broker.result(d)
            retained = [broker.peek(d) is not None for d in digests]
            await broker.close()
            return len(broker._errors), retained

        size, retained = run(main())
        assert size == 2
        assert retained == [False, True, True]  # oldest evicted


class TestCorruptRecordResubmission:
    """Bug 2: a corrupt store record must re-simulate, not KeyError."""

    def test_submit_after_corruption_reenqueues(self, tmp_path):
        async def main():
            store = ResultStore(tmp_path)
            broker = Broker(store, endpoints=ENDPOINTS)
            await broker.start()
            digest = broker.submit("a", make_cell())
            first = await broker.result(digest)
            assert first["status"] == "done"
            # truncate the record on disk behind the broker's back
            store._path(digest).write_text("{not json")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ResultStoreWarning)
                # before the fix this existence check said "store hit",
                # and the later result() call raised KeyError (a 500)
                assert broker.submit("a", make_cell()) == digest
                redone = await broker.result(digest)
            await broker.close()
            return broker.counters, first, redone

        counters, first, redone = run(main())
        assert counters["simulated"] == 2
        assert counters["store_hits"] == 0
        assert redone["status"] == "done"
        assert redone["record"]["makespan"] == first["record"]["makespan"]


def _raw_request(host: str, port: int, payload: bytes) -> int:
    """Send raw bytes, return the HTTP status code of the response."""
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(payload)
        data = b""
        while b"\r\n" not in data:
            chunk = sock.recv(4096)
            if not chunk:
                break
            data += chunk
    return int(data.split(b"\r\n", 1)[0].split()[1])


class TestContentLengthValidation:
    """Bug 3: malformed Content-Length must be a 400, never a 500."""

    _BAD = ("-5", "+5", "abc", "1_0", "0x10", "5 5", "")

    def test_malformed_and_conflicting_lengths(self, tmp_path):
        with ServerThread(tmp_path / "store") as client:
            for bad in self._BAD:
                status = _raw_request(
                    client.host, client.port,
                    (f"POST /v1/submit HTTP/1.1\r\n"
                     f"Content-Length: {bad}\r\n\r\n").encode())
                assert status == 400, f"Content-Length {bad!r} -> {status}"
            status = _raw_request(
                client.host, client.port,
                b"POST /v1/submit HTTP/1.1\r\n"
                b"Content-Length: 4\r\n"
                b"Content-Length: 7\r\n\r\nnull")
            assert status == 400  # conflicting duplicates
            # duplicate *identical* lengths behave as one header
            status = _raw_request(
                client.host, client.port,
                b"POST /v1/submit HTTP/1.1\r\n"
                b"Content-Length: 4\r\n"
                b"Content-Length: 4\r\n\r\nnull")
            assert status == 400  # parses; rejected as a bad submission
            # and an honest request on the same server still works
            status = _raw_request(
                client.host, client.port,
                b"GET /v1/healthz HTTP/1.1\r\n\r\n")
            assert status == 200


class TestSchedulerLanePruning:
    """Bug 4a: drained lanes (and their pass values) must be dropped."""

    def test_drained_lanes_are_pruned(self):
        sched = FairScheduler(64)
        for i in range(20):
            sched.submit(f"tenant-{i}", i)
        assert len(sched._lanes) == 20
        drained = list(sched.drain())
        assert len(drained) == 20
        assert sched._lanes == {}
        assert sched._passes == {}
        assert sched.backlog() == {}

    def test_rejoin_after_prune_keeps_fairness(self):
        sched = FairScheduler(64, weights={"gold": 2})
        sched.submit("gold", "g0")
        sched.submit("lead", "l0")
        list(sched.drain())
        # rejoin after pruning: both restart from the clock, and the
        # weighted interleave is the same as if lanes had been retained
        for i in range(4):
            sched.submit("gold", f"g{i}")
            sched.submit("lead", f"l{i}")
        drained = list(sched.drain())
        order = [t for t, _ in drained]
        items = [i for _, i in drained]
        assert order.count("gold") == 4 and order.count("lead") == 4
        # weight-2 gold drains twice per lead service slot
        assert items.index("l1") > items.index("g2")

    def test_partial_drain_keeps_backlogged_lane(self):
        sched = FairScheduler(8)
        sched.submit("a", 1)
        sched.submit("a", 2)
        assert sched.next() == ("a", 1)
        assert "a" in sched._lanes  # still backlogged: not pruned
        assert sched.next() == ("a", 2)
        assert "a" not in sched._lanes


class TestStoreTmpSweep:
    """Bug 4b: stale temp files from crashed writers are swept at open."""

    def test_stale_tmp_swept_fresh_kept(self, tmp_path):
        store = ResultStore(tmp_path)
        fan = tmp_path / "ab"
        fan.mkdir()
        stale = fan / f"{'a' * 64}.123.tmp"
        fresh = fan / f"{'b' * 64}.456.tmp"
        stale.write_text("half-written")
        fresh.write_text("in-flight")
        past = time.time() - 2 * ResultStore.TMP_STALE_S
        os.utime(stale, (past, past))
        reopened = ResultStore(tmp_path)
        assert reopened.stats["swept"] == 1
        assert not stale.exists()
        assert fresh.exists()  # a live writer's file is left alone
        assert store.stats["swept"] == 0  # first open had nothing stale
