"""Tests for the design space and proposal strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HYBRID_FAMILIES
from repro.errors import ConfigError
from repro.search.pareto import Objectives
from repro.search.space import Candidate, DesignSpace
from repro.search.strategies import (EvolutionStrategy, SearchStrategy,
                                     available_strategies, make_strategy)


def space_512() -> DesignSpace:
    return DesignSpace(endpoints=512)


class TestCandidate:
    def test_labels(self):
        assert Candidate("nesttree", 2, 4).label() == "nesttree(2,4)"
        degraded = Candidate("nestghc", 4, 2, fail_links=3)
        assert degraded.label() == "nestghc(4,2)+3c"
        assert degraded.topology_label() == "nestghc(4,2)"

    def test_spec_builds_the_right_family(self):
        spec = Candidate("nesttree", 2, 2).spec()
        assert spec.label() == "nesttree(2,2)"
        topo = spec.build(64)
        assert topo.num_endpoints == 64


class TestDesignSpace:
    def test_enumeration_is_deterministic_and_complete(self):
        space = space_512()
        cands = space.enumerate()
        assert len(cands) == space.size() == len(HYBRID_FAMILIES) * 3 * 4
        assert cands == space.enumerate()
        assert all(c in space for c in cands)

    def test_sides_must_tile_both_scales(self):
        # t=8 tiles 512 but not a 64-endpoint pilot
        space = DesignSpace(endpoints=512, pilot_endpoints=64)
        assert 8 not in space.valid_sides()
        assert Candidate("nesttree", 8, 1) not in space

    def test_untileable_scale_is_a_typed_error(self):
        with pytest.raises(ConfigError, match="tiles"):
            DesignSpace(endpoints=12)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigError, match="searchable families"):
            DesignSpace(endpoints=512, families=("dragonfly",))

    def test_negative_fault_level_rejected(self):
        with pytest.raises(ConfigError, match="fault levels"):
            DesignSpace(endpoints=512, fault_levels=(-1,))

    def test_sample_and_mutate_stay_in_space(self):
        space = DesignSpace(endpoints=512, fault_levels=(0, 2))
        rng = np.random.default_rng(0)
        for _ in range(100):
            cand = space.sample(rng)
            assert cand in space
            mutated = space.mutate(cand, rng)
            assert mutated in space

    def test_mutation_is_a_single_axis_step(self):
        space = DesignSpace(endpoints=512, fault_levels=(0, 2))
        rng = np.random.default_rng(1)
        for _ in range(100):
            cand = space.sample(rng)
            mutated = space.mutate(cand, rng)
            changed = sum(getattr(cand, f) != getattr(mutated, f)
                          for f in ("family", "t", "u", "fail_links"))
            assert changed == 1


class TestStrategies:
    def test_registry(self):
        assert available_strategies() == ["evolution", "grid", "random"]
        with pytest.raises(ConfigError, match="unknown search strategy"):
            make_strategy("annealing", space_512())

    def test_all_satisfy_the_protocol(self):
        for name in available_strategies():
            assert isinstance(make_strategy(name, space_512()),
                              SearchStrategy)

    def test_grid_enumerates_once_then_exhausts(self):
        space = space_512()
        grid = make_strategy("grid", space)
        seen: list[Candidate] = []
        while batch := grid.propose(5):
            seen.extend(batch)
        assert seen == space.enumerate()
        assert grid.propose(5) == []

    def test_random_is_deterministic_under_seed(self):
        space = space_512()
        a = make_strategy("random", space, seed=7).propose(20)
        b = make_strategy("random", space, seed=7).propose(20)
        assert a == b
        assert all(c in space for c in a)
        assert make_strategy("random", space, seed=8).propose(20) != a

    def test_evolution_mutates_nondominated_parents(self):
        space = space_512()
        evo = EvolutionStrategy(space, seed=0, immigrant_rate=0.0)
        parent = Candidate("nesttree", 2, 2)
        evo.observe([
            (parent, Objectives(1.0, 0.1, 0.1)),
            (Candidate("nesttree", 2, 1), Objectives(2.0, 0.2, 0.2)),
        ])
        children = evo.propose(10)
        # the dominated design never parents; every child is one step
        # away from the sole archive member
        for child in children:
            changed = sum(getattr(parent, f) != getattr(child, f)
                          for f in ("family", "t", "u", "fail_links"))
            assert changed == 1

    def test_evolution_drops_infeasible_parents(self):
        space = space_512()
        evo = EvolutionStrategy(space, seed=0, immigrant_rate=0.0)
        cand = Candidate("nesttree", 2, 2)
        evo.observe([(cand, Objectives(1.0, 0.1, 0.1))])
        evo.observe([(cand, None)])  # turned out infeasible at simulation
        assert evo._parents() == []
        assert len(evo.propose(5)) == 5  # falls back to random sampling

    def test_evolution_deterministic_under_seed(self):
        space = space_512()
        runs = []
        for _ in range(2):
            evo = EvolutionStrategy(space, seed=3)
            history = []
            for objective in (1.0, 1.5, 0.5):
                batch = evo.propose(4)
                history.append(batch)
                evo.observe([(c, Objectives(objective, 0.1, 0.1))
                             for c in batch])
            runs.append(history)
        assert runs[0] == runs[1]
