"""Golden-value regression tests for the paper's static tables.

Table 1 (average distance / diameter under routing) and Table 2 (switch
counts and cost/power overheads) are pure functions of the topology
planners and routing functions, so their outputs at a reduced scale are
checked in verbatim: any refactor of the routing, planner, or cost code
that shifts a value — even in the last digit — fails here before it can
silently skew the paper-scale numbers.

The goldens were computed at 64 endpoints (small enough that the distance
statistics are exact enumerations over all ordered pairs, not samples).
At this scale the t=4 design points collapse to a single 4x4x4 subtorus —
all traffic stays in the lower tier, so their statistics equal the bare
torus's.  That degeneracy is itself part of the golden record.
"""

from __future__ import annotations

import pytest

from repro.topology import build
from repro.topology.analysis import path_length_stats, routing_diameter
from repro.topology.cost import (CostModel, fattree_switch_count,
                                 ghc_switch_count, overhead_row)

ENDPOINTS = 64

#: (family, t, u) -> (exact average routed distance, routing diameter).
TABLE1_GOLDEN = {
    ("nesttree", 2, 1): (5.269841, 6),
    ("nesttree", 2, 2): (6.158730, 8),
    ("nesttree", 2, 4): (6.603175, 8),
    ("nesttree", 2, 8): (7.174603, 12),
    ("nesttree", 4, 1): (3.047619, 6),
    ("nesttree", 4, 2): (3.047619, 6),
    ("nesttree", 4, 4): (3.047619, 6),
    ("nesttree", 4, 8): (3.047619, 6),
    ("nestghc", 2, 1): (4.126984, 6),
    ("nestghc", 2, 2): (4.825397, 8),
    ("nestghc", 2, 4): (5.269841, 8),
    ("nestghc", 2, 8): (6.158730, 11),
    ("nestghc", 4, 1): (3.047619, 6),
    ("nestghc", 4, 2): (3.047619, 6),
    ("nestghc", 4, 4): (3.047619, 6),
    ("nestghc", 4, 8): (3.047619, 6),
    ("fattree", None, None): (5.428571, 6),
    ("torus", None, None): (3.047619, 6),
}

#: u -> (GHC switches, tree switches, cost ghc, cost tree, power ghc,
#: power tree) for an upper tier serving 64/u ports, default cost model.
TABLE2_GOLDEN = {
    1: (4, 48, 0.046875, 0.562500, 0.015625, 0.187500),
    2: (2, 32, 0.023438, 0.375000, 0.007812, 0.125000),
    4: (1, 20, 0.011719, 0.234375, 0.003906, 0.078125),
    8: (1, 12, 0.011719, 0.140625, 0.003906, 0.046875),
}


def _build(family, t, u):
    params = {}
    if t is not None:
        params = {"t": t, "u": u}
    return build(family, ENDPOINTS, **params)


@pytest.mark.parametrize("family,t,u", sorted(
    TABLE1_GOLDEN, key=lambda k: (k[0], k[1] or 0, k[2] or 0)))
def test_table1_distance_goldens(family, t, u):
    topo = _build(family, t, u)
    stats = path_length_stats(topo, max_pairs=10_000)
    assert stats.exact, "64 endpoints must enumerate all pairs"
    golden_avg, golden_diam = TABLE1_GOLDEN[(family, t, u)]
    assert stats.average == pytest.approx(golden_avg, abs=1e-6)
    assert routing_diameter(topo) == golden_diam
    # the observed maximum over all pairs is the diameter by definition
    assert stats.maximum == golden_diam


def test_table1_histogram_is_complete():
    """The distance histogram covers every ordered distinct pair."""
    topo = _build("nesttree", 2, 4)
    stats = path_length_stats(topo, max_pairs=10_000)
    assert sum(stats.histogram.values()) == ENDPOINTS * (ENDPOINTS - 1)
    assert stats.pairs_measured == ENDPOINTS * (ENDPOINTS - 1)


@pytest.mark.parametrize("u", sorted(TABLE2_GOLDEN))
def test_table2_cost_goldens(u):
    ports = ENDPOINTS // u
    sg = ghc_switch_count(ports)
    st = fattree_switch_count(ports)
    rg = overhead_row("ghc", sg, ENDPOINTS)
    rt = overhead_row("tree", st, ENDPOINTS)
    g_sg, g_st, g_cg, g_ct, g_pg, g_pt = TABLE2_GOLDEN[u]
    assert sg == g_sg
    assert st == g_st
    assert rg.cost_increase == pytest.approx(g_cg, abs=1e-6)
    assert rt.cost_increase == pytest.approx(g_ct, abs=1e-6)
    assert rg.power_increase == pytest.approx(g_pg, abs=1e-6)
    assert rt.power_increase == pytest.approx(g_pt, abs=1e-6)


def test_table2_paper_scale_reference():
    """The full-fattree reference row the paper prints, exactly.

    9216 switches at 131,072 endpoints give +5.27% cost and +1.76% power
    under the back-solved linear model — the values in the paper's text.
    """
    switches = fattree_switch_count(131_072)
    assert switches == 9216
    row = overhead_row("fattree", switches, 131_072, CostModel())
    assert round(row.cost_increase * 100, 2) == 5.27
    assert round(row.power_increase * 100, 2) == 1.76
