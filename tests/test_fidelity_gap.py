"""Fidelity-gap and metrics-conservation properties across families.

Two cross-cutting engine claims, exercised on every topology family the
paper sweeps (plus the GHC baseline) with seeded random workloads:

* the bounded-churn ``approx`` fidelity tracks the ``exact`` reference
  makespan within the suite's stated 25% envelope (the same bound
  ``test_simulator_properties`` holds on the torus — here it must hold on
  hybrids too, whose two-tier routes are exactly where rate inheritance
  could drift);
* the observability layer conserves bits: summed per-link delivered bits
  equal the total routed bits (flow size x route length over networked
  flows, zero-hop flows excluded), and the per-tier aggregation is a
  partition — tier delivered bits sum back to the link total exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import simulate
from repro.engine.flows import FlowBuilder
from repro.obs import MetricsCollector, validate_snapshot
from repro.units import DEFAULT_LINK_CAPACITY as CAP

#: Stated approx-vs-exact makespan envelope (see docs/simulation-model.md).
FIDELITY_REL_BOUND = 0.25

FAMILIES = ("small_torus", "small_fattree", "small_ghc", "small_nesttree",
            "small_nestghc")


def _random_workload(num_tasks: int, seed: int, *, flows: int = 60):
    """Seeded random flow DAG: random pairs, sizes, and forward edges."""
    rng = np.random.default_rng(seed)
    b = FlowBuilder(num_tasks)
    for _ in range(flows):
        src = int(rng.integers(num_tasks))
        dst = int(rng.integers(num_tasks))
        b.add_flow(src, dst, CAP * float(rng.uniform(0.001, 0.2)))
    for _ in range(int(rng.integers(0, flows))):
        succ = int(rng.integers(1, flows))
        pred = int(rng.integers(0, succ))
        b.add_dependency(pred, succ)
    return b.build()


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_approx_within_stated_bound_of_exact(family, seed, request):
    topo = request.getfixturevalue(family)
    flows = _random_workload(topo.num_endpoints, seed)
    cache: dict = {}
    exact = simulate(topo, flows, fidelity="exact", route_cache=cache)
    approx = simulate(topo, flows, fidelity="approx", route_cache=cache)
    assert approx.makespan == pytest.approx(exact.makespan,
                                            rel=FIDELITY_REL_BOUND)
    # approx must do no more allocations than exact (that is its point)
    assert approx.reallocations <= exact.reallocations


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("fidelity", ["exact", "approx"])
def test_metrics_conserve_routed_bits(family, fidelity, request):
    topo = request.getfixturevalue(family)
    flows = _random_workload(topo.num_endpoints, seed=7)
    collector = MetricsCollector(topo.links.num_links)
    result = simulate(topo, flows, fidelity=fidelity, metrics=collector)

    # ground truth, recomputed independently of the collector: every
    # networked flow delivers its full size over each link of its route
    expected = 0.0
    injected = 0.0
    for f in range(flows.num_flows):
        src, dst = int(flows.src[f]), int(flows.dst[f])
        if src == dst:
            continue  # zero-hop: never enters the network
        route_len = len(topo.route(src, dst))
        expected += float(flows.size[f]) * route_len
        injected += float(flows.size[f])

    assert collector.link_bits.sum() == pytest.approx(expected, rel=1e-9)
    snap = result.metrics
    validate_snapshot(snap)
    assert snap["delivered_link_bits"] == pytest.approx(expected, rel=1e-9)
    assert snap["injected_bits"] == pytest.approx(injected, rel=1e-9)

    # tiers partition the link table: per-tier bits sum to the link total
    tier_sum = sum(t["delivered_bits"] for t in snap["tiers"].values())
    assert tier_sum == pytest.approx(float(collector.link_bits.sum()),
                                     rel=1e-12)
    assert sum(t["links"] for t in snap["tiers"].values()) \
        == topo.links.num_links


def test_zero_hop_flows_excluded_from_conservation(small_torus):
    """Co-located flows count as injected work but never as link traffic."""
    b = FlowBuilder(small_torus.num_endpoints)
    b.add_flow(0, 0, CAP * 0.1)   # zero-hop under identity placement
    b.add_flow(0, 1, CAP * 0.1)
    collector = MetricsCollector(small_torus.links.num_links)
    simulate(small_torus, b.build(), metrics=collector)
    assert collector.zero_hop_flows == 1
    assert collector.network_flows == 1
    route_len = len(small_torus.route(0, 1))
    assert collector.link_bits.sum() == pytest.approx(
        CAP * 0.1 * route_len, rel=1e-12)
