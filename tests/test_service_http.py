"""End-to-end tests of the HTTP front-end.

The acceptance test of the service subsystem: N concurrent HTTP clients
submitting overlapping cells must each receive results byte-identical to
direct ``run_sweep`` calls, with exactly one simulation per unique
fingerprint, and a saturated bounded queue must answer with a typed 429.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.service import Broker, ResultStore, ServiceClient, ServiceServer

ENDPOINTS = 64

CELLS = [
    {"workload": "reduce", "tasks": 16,
     "topology": {"family": "fattree", "params": {}}},
    {"workload": "reduce", "tasks": 16,
     "topology": {"family": "nesttree", "params": {"t": 2, "u": 4}}},
    {"workload": "allreduce", "tasks": None,
     "topology": {"family": "torus", "params": {}}},
]


class ServerThread:
    """A live service in a daemon thread with its own event loop."""

    def __init__(self, store_dir, **broker_kw):
        self.store_dir = store_dir
        self.broker_kw = dict({"endpoints": ENDPOINTS}, **broker_kw)
        self._ready: queue.Queue = queue.Queue()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            broker = Broker(ResultStore(self.store_dir), **self.broker_kw)
            server = ServiceServer(broker)
            host, port = await server.start()
            self._ready.put((host, port))
            await self._stop.wait()
            await server.close()

        asyncio.run(main())

    def __enter__(self) -> ServiceClient:
        self._thread.start()
        host, port = self._ready.get(timeout=30)
        return ServiceClient(host, port)

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


class TestConcurrentClients:
    def test_overlapping_clients_get_identical_results_one_sim_each(
            self, tmp_path):
        from repro.service.protocol import cell_from_json
        from repro.sweep.plan import SweepPlan
        from repro.sweep.runner import run_sweep

        n_clients = 6
        with ServerThread(tmp_path / "store") as client:
            def one_client(i: int):
                # every client submits the full overlapping set, rotated
                cells = CELLS[i % len(CELLS):] + CELLS[:i % len(CELLS)]
                status, doc = client.submit(cells, tenant=f"t{i % 3}",
                                            wait=True)
                assert status == 200
                return doc["results"]

            with ThreadPoolExecutor(n_clients) as pool:
                all_results = list(pool.map(one_client,
                                            range(n_clients)))
            stats = client.stats()

        # exactly one simulation per unique fingerprint, despite
        # 6 clients x 3 cells = 18 requests
        assert stats["counters"]["simulated"] == len(CELLS)
        assert stats["counters"]["requests"] == n_clients * len(CELLS)
        dedup_or_hit = stats["counters"]["deduped"] \
            + stats["counters"]["store_hits"]
        assert dedup_or_hit == n_clients * len(CELLS) - len(CELLS)
        assert stats["counters"]["errors"] == 0

        # every client saw the same result document per digest
        by_digest: dict[str, dict] = {}
        for results in all_results:
            for doc in results:
                assert doc["status"] == "done"
                prior = by_digest.setdefault(doc["digest"], doc)
                assert prior == doc

        # ... and those documents are byte-identical to a direct sweep
        cells = [cell_from_json(c) for c in CELLS]
        direct: dict[str, dict] = {}
        run_sweep(SweepPlan(endpoints=ENDPOINTS, fidelity="approx",
                            seed=0, cells=tuple(cells)),
                  results_out=direct)
        served = {doc["record"]["key"]: doc for doc in by_digest.values()}
        for cell in cells:
            want = dict(direct[cell.key()])
            got = dict(served[cell.key()]["record"])
            want.pop("wall_seconds"), got.pop("wall_seconds")
            assert got == want


class TestBackpressureOverHttp:
    def test_saturated_queue_returns_typed_429(self, tmp_path):
        with ServerThread(tmp_path / "store", capacity=1) as client:
            # one request, three novel cells: the submits happen in one
            # event-loop step, so the second necessarily overflows the
            # one-slot queue before the drain loop can run
            status, doc = client.submit(CELLS, wait=False)
            assert status == 429
            assert doc["error"] == "QueueFullError"
            assert doc["capacity"] == 1
            assert doc["depth"] == 1
            assert "retry" in doc["message"]
            stats = client.stats()
            assert stats["counters"]["rejected"] >= 1


class TestHttpSurface:
    def test_endpoints_and_error_mapping(self, tmp_path):
        with ServerThread(tmp_path / "store") as client:
            assert client.healthy()

            # protocol errors name the offending field, status 400
            status, doc = client.submit(
                [{"workload": "nope",
                  "topology": {"family": "fattree", "params": {}}}])
            assert status == 400
            assert doc["error"] == "ProtocolError"
            assert "workload" in doc["message"]

            status, doc = client.submit(
                [{"workload": "reduce", "tasks": 16,
                  "topology": {"family": "nesttree",
                               "params": {"t": 3, "u": 4}}}])
            assert status == 400  # invalid hybrid (odd side at u>1)

            # async round trip: submit without wait, poll the digest
            status, doc = client.submit(CELLS[:1], wait=False)
            assert status == 200
            digest = doc["digests"][0]
            assert doc["statuses"][0]["status"] in ("pending", "done")
            while True:
                status, res = client.result(digest)
                if status == 200:
                    break
                assert status == 202  # pending, not an error
            assert res["status"] == "done"
            assert res["record"]["workload"] == "reduce"

            status, doc = client.result("0" * 64)
            assert status == 404

            status, doc = client._request("GET", "/v1/nope")
            assert status == 404
            status, doc = client._request("POST", "/v1/stats")
            assert status == 405
