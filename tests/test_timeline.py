"""Tests for transient fault timelines and the transient engine.

The acceptance matrix of the transient-fault PR:

* an empty ``FaultTimeline`` leaves ``simulate()`` bitwise-identical to a
  call without one, for all routing policies and both allocators;
* a timeline whose events all precede t=0 and never repair matches the
  equivalent static ``DegradedTopology`` run exactly;
* mid-run faults recover in-flight flows (remaining bytes preserved),
  park flows whose pair is cut until a repair, and raise the typed
  ``DegradedNetworkError`` only when no repair ever reconnects the pair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import simulate
from repro.engine.flows import FlowBuilder
from repro.errors import DegradedNetworkError, SimulationError, TopologyError
from repro.obs import MetricsCollector
from repro.obs.metrics import validate_snapshot
from repro.topology import (DegradedTopology, FaultEvent, FaultSet,
                            FaultTimeline, TimelineSpec, build)
from repro.workloads import build as build_workload

ENDPOINTS = 64

_topos: dict[str, object] = {}
_flows: dict[str, object] = {}


def topo(family="torus"):
    if family not in _topos:
        _topos[family] = build(family, ENDPOINTS,
                               **({"t": 2, "u": 2}
                                  if family in ("nesttree", "nestghc")
                                  else {}))
    return _topos[family]


def flows(name="allreduce"):
    if name not in _flows:
        _flows[name] = build_workload(name, ENDPOINTS).build()
    return _flows[name]


def cable_of(topology, u, v):
    """Both directed link ids of the (u, v) cable."""
    return frozenset({topology.links.id_of(u, v),
                      topology.links.id_of(v, u)})


class TestFaultTimeline:
    def test_sampling_is_reproducible(self):
        t = topo()
        a = FaultTimeline.sample(t, cables=4, seed=3, horizon=1.0, mttr=0.2)
        b = FaultTimeline.sample(t, cables=4, seed=3, horizon=1.0, mttr=0.2)
        assert [ev.time for ev in a.events] == [ev.time for ev in b.events]
        assert all(x.fail_links == y.fail_links
                   for x, y in zip(a.events, b.events))
        assert a.fingerprint() == {"cables": 4, "uplinks": 0, "seed": 3,
                                   "horizon": 1.0, "mttr": 0.2}

    def test_sampled_repairs_restore_everything(self):
        tl = FaultTimeline.sample(topo(), cables=5, seed=1, horizon=1.0,
                                  mttr=0.1)
        final = tl.epochs()[-1].faults
        assert final.empty

    def test_permanent_faults_never_repair(self):
        tl = FaultTimeline.sample(topo(), cables=5, seed=1, horizon=1.0)
        assert all(not ev.repair_links for ev in tl.events)
        assert len(tl.epochs()[-1].faults.failed_links) == 10

    def test_same_instant_events_merge(self):
        t = topo()
        c1 = cable_of(t, 0, 1)
        c2 = cable_of(t, 1, 2)
        tl = FaultTimeline([FaultEvent(0.5, fail_links=c1),
                            FaultEvent(0.5, fail_links=c2)])
        assert len(tl.events) == 1
        assert tl.events[0].fail_links == c1 | c2

    def test_fail_and_repair_same_instant_rejected(self):
        c = cable_of(topo(), 0, 1)
        with pytest.raises(TopologyError, match="fails and repairs"):
            FaultTimeline([FaultEvent(0.5, fail_links=c, repair_links=c)])

    def test_double_fail_rejected(self):
        c = cable_of(topo(), 0, 1)
        tl = FaultTimeline([FaultEvent(0.1, fail_links=c),
                            FaultEvent(0.2, fail_links=c)])
        with pytest.raises(TopologyError, match="already-failed"):
            tl.epochs()

    def test_ghost_repair_rejected(self):
        c = cable_of(topo(), 0, 1)
        tl = FaultTimeline([FaultEvent(0.1, repair_links=c)])
        with pytest.raises(TopologyError, match="not failed"):
            tl.epochs()

    def test_epochs_accumulate_and_heal(self):
        t = topo()
        c1, c2 = cable_of(t, 0, 1), cable_of(t, 1, 2)
        tl = FaultTimeline([FaultEvent(0.1, fail_links=c1),
                            FaultEvent(0.2, fail_links=c2),
                            FaultEvent(0.3, repair_links=c1)])
        eps = tl.epochs()
        assert [e.start for e in eps] == [0.1, 0.2, 0.3]
        assert eps[0].faults.failed_links == c1
        assert eps[1].faults.failed_links == c1 | c2
        assert eps[2].faults.failed_links == c2

    def test_from_fault_set_roundtrip(self):
        fs = FaultSet.sample(topo(), cables=3, seed=5)
        tl = FaultTimeline.from_fault_set(fs)
        assert len(tl.events) == 1
        assert tl.epochs()[0].faults.failed_links == fs.failed_links

    def test_describe_counts_cables(self):
        tl = FaultTimeline.sample(topo(), cables=3, seed=0, horizon=2.0,
                                  mttr=0.5)
        assert "3 failures, 3 repairs" in tl.describe()
        assert FaultTimeline().describe() == "empty timeline"

    def test_spec_builds_identical_timeline(self):
        spec = TimelineSpec(cables=3, seed=2, horizon=1.5, mttr=0.3)
        a, b = spec.build(topo()), spec.build(topo())
        assert [ev.time for ev in a.events] == [ev.time for ev in b.events]
        assert spec.label() == "tl(3,0,s2,h1.5,r0.3)"
        assert spec.fingerprint()["mttr"] == 0.3

    def test_uplink_sampling_needs_hybrid(self):
        with pytest.raises(TopologyError, match="hybrid"):
            FaultTimeline.sample(topo(), uplinks=1, horizon=1.0)

    def test_hybrid_uplink_timeline(self):
        tl = FaultTimeline.sample(topo("nesttree"), cables=2, uplinks=2,
                                  seed=0, horizon=1.0, mttr=0.2)
        assert sum(len(ev.fail_uplinks) for ev in tl.events) == 2
        tl.validate(topo("nesttree"))


class TestEmptyTimelineIdentity:
    """Acceptance: an empty timeline is bitwise-invisible."""

    @pytest.mark.parametrize("routing",
                             ("deterministic", "ecmp", "adaptive"))
    @pytest.mark.parametrize("allocator", ("incremental", "rebuild"))
    def test_bitwise_identical(self, routing, allocator):
        base = simulate(topo(), flows(), fidelity="approx",
                        routing=routing, allocator=allocator)
        timed = simulate(topo(), flows(), fidelity="approx",
                         routing=routing, allocator=allocator,
                         fault_timeline=FaultTimeline())
        assert timed.makespan == base.makespan
        assert np.array_equal(timed.completion_times, base.completion_times)
        assert np.array_equal(timed.start_times, base.start_times)
        assert timed.events == base.events
        assert timed.reallocations == base.reallocations
        assert timed.transient is None

    def test_never_firing_timeline_is_bitwise_identical(self):
        # events exist but all land beyond the job's end: the transient
        # engine runs, yet no epoch boundary ever fires
        base = simulate(topo(), flows(), fidelity="approx")
        tl = FaultTimeline.sample(topo(), cables=4, seed=2,
                                  horizon=base.makespan * 1e6)
        assert all(ev.time > base.makespan for ev in tl.events)
        timed = simulate(topo(), flows(), fidelity="approx",
                         fault_timeline=tl)
        assert timed.makespan == base.makespan
        assert np.array_equal(timed.completion_times, base.completion_times)
        assert timed.transient["fault_events"] == 0


class TestStaticEquivalence:
    """Acceptance: pre-t0 events that never repair == static FaultSet."""

    @pytest.mark.parametrize("fidelity", ("exact", "approx"))
    @pytest.mark.parametrize("routing",
                             ("deterministic", "ecmp", "adaptive"))
    def test_matches_degraded_topology_run(self, fidelity, routing):
        fs = FaultSet.sample(topo(), cables=3, seed=7)
        static = simulate(DegradedTopology(topo(), fs), flows(),
                          fidelity=fidelity, routing=routing)
        timed = simulate(topo(), flows(), fidelity=fidelity,
                         routing=routing,
                         fault_timeline=FaultTimeline.from_fault_set(fs))
        assert timed.makespan == static.makespan
        assert np.array_equal(timed.completion_times,
                              static.completion_times)
        assert timed.events == static.events
        assert timed.transient["fault_events"] == 0

    def test_pre_t0_hybrid_uplink_faults_match(self):
        fs = FaultSet.sample(topo("nesttree"), cables=2, uplinks=1, seed=1)
        static = simulate(DegradedTopology(topo("nesttree"), fs),
                          flows(), fidelity="approx")
        timed = simulate(topo("nesttree"), flows(), fidelity="approx",
                         fault_timeline=FaultTimeline.from_fault_set(
                             fs, time=-1.0))
        assert timed.makespan == static.makespan
        assert np.array_equal(timed.completion_times,
                              static.completion_times)


class TestTransientRecovery:
    def test_mid_run_faults_reroute_in_flight_flows(self):
        healthy = simulate(topo(), flows(), fidelity="approx")
        h = healthy.makespan
        tl = FaultTimeline.sample(topo(), cables=6, seed=3, horizon=h * 0.8,
                                  mttr=h * 0.2)
        result = simulate(topo(), flows(), fidelity="approx",
                          fault_timeline=tl)
        assert result.transient["fault_events"] > 0
        assert result.transient["flows_rerouted"] > 0
        assert result.transient["rerouted_bits"] > 0
        assert result.makespan >= h
        assert np.isfinite(result.completion_times).all()

    def test_exact_and_approx_both_recover(self):
        h = simulate(topo(), flows(), fidelity="approx").makespan
        tl = FaultTimeline.sample(topo(), cables=6, seed=3, horizon=h * 0.8,
                                  mttr=h * 0.2)
        for fidelity in ("exact", "approx"):
            result = simulate(topo(), flows(), fidelity=fidelity,
                              fault_timeline=tl)
            assert result.transient["flows_rerouted"] > 0

    def _single_flow(self, src, dst, size=8e6):
        fb = FlowBuilder(ENDPOINTS)
        fb.add_flow(src, dst, size)
        return fb.build()

    def _isolate_endpoint(self, t, endpoint):
        """Every network cable touching ``endpoint`` (its whole degree)."""
        nic_base = t.num_endpoints + t.num_switches
        return frozenset(
            lid for lid in range(t.links.num_links)
            if endpoint in t.links.endpoints_of(lid)
            and max(t.links.endpoints_of(lid)) < nic_base)

    def test_cut_pair_parks_until_repair(self):
        # cut endpoint 0's entire degree mid-flow, then repair: the flow
        # must park (it cannot route anywhere) and recover on repair
        t = topo()
        wl = self._single_flow(0, 5)
        h = simulate(t, wl).makespan
        cut = self._isolate_endpoint(t, 0)
        tl = FaultTimeline([
            FaultEvent(h * 0.25, fail_links=cut),
            FaultEvent(h * 2.0, repair_links=cut),
        ])
        result = simulate(t, wl, fault_timeline=tl)
        assert result.transient["flows_parked"] == 1
        assert result.transient["flows_recovered"] == 1
        assert result.transient["recovery_seconds"] > 0
        # the flow sat parked from the cut until the repair
        assert result.makespan > h * 2.0

    def test_released_flow_parks_when_pair_is_cut(self):
        # the successor of a completed flow is released while its pair is
        # cut: admission itself must park it, not crash
        t = topo()
        fb = FlowBuilder(ENDPOINTS)
        first = fb.add_flow(10, 20, 4e6)
        fb.add_flow(0, 5, 4e6, after=[first])
        wl = fb.build()
        h_first = simulate(t, self._single_flow(10, 20, 4e6)).makespan
        cut = self._isolate_endpoint(t, 0)
        tl = FaultTimeline([
            FaultEvent(h_first * 0.5, fail_links=cut),
            FaultEvent(h_first * 3.0, repair_links=cut),
        ])
        result = simulate(t, wl, fault_timeline=tl)
        assert result.transient["flows_parked"] == 1
        assert result.transient["flows_recovered"] == 1
        assert np.isfinite(result.completion_times).all()

    def test_never_repaired_disconnect_raises(self):
        t = topo()
        wl = self._single_flow(0, 5)
        h = simulate(t, wl).makespan
        cut = self._isolate_endpoint(t, 0)
        tl = FaultTimeline([FaultEvent(h * 0.25, fail_links=cut)])
        with pytest.raises(DegradedNetworkError) as exc:
            simulate(t, wl, fault_timeline=tl)
        assert (0, 5) in exc.value.pairs

    def test_timeline_on_degraded_topology_rejected(self):
        deg = DegradedTopology(topo(), FaultSet.sample(topo(), cables=1))
        tl = FaultTimeline.sample(topo(), cables=1, seed=0, horizon=1.0)
        with pytest.raises(SimulationError, match="timeline events"):
            simulate(deg, flows(), fault_timeline=tl)

    def test_timeline_requires_incremental_allocator(self):
        tl = FaultTimeline.sample(topo(), cables=1, seed=0, horizon=1.0)
        with pytest.raises(SimulationError, match="incremental"):
            simulate(topo(), flows(), allocator="rebuild",
                     fault_timeline=tl)

    def test_timeline_validated_against_topology(self):
        other = build("torus", 512)
        tl = FaultTimeline.sample(other, cables=4, seed=0, horizon=1.0)
        with pytest.raises(TopologyError, match="unknown link id"):
            simulate(topo(), flows(), fault_timeline=tl)

    def test_transient_runs_are_deterministic(self):
        h = simulate(topo(), flows(), fidelity="approx").makespan
        tl = FaultTimeline.sample(topo(), cables=6, seed=3, horizon=h * 0.8,
                                  mttr=h * 0.2)
        a = simulate(topo(), flows(), fidelity="approx", fault_timeline=tl)
        b = simulate(topo(), flows(), fidelity="approx", fault_timeline=tl)
        assert a.makespan == b.makespan
        assert np.array_equal(a.completion_times, b.completion_times)
        assert a.transient == b.transient

    def test_route_cache_is_shared_across_epochs(self):
        # fail/repair cycles must not poison a shared cache: a healthy run
        # through the same cache afterwards still matches a fresh one
        cache: dict = {}
        h = simulate(topo(), flows(), fidelity="approx").makespan
        tl = FaultTimeline.sample(topo(), cables=4, seed=1, horizon=h * 0.5,
                                  mttr=h * 0.1)
        simulate(topo(), flows(), fidelity="approx", fault_timeline=tl,
                 route_cache=cache)
        assert len(cache) > 0
        reused = simulate(topo(), flows(), fidelity="approx",
                          route_cache=cache)
        fresh = simulate(topo(), flows(), fidelity="approx")
        assert reused.makespan == fresh.makespan
        assert np.array_equal(reused.completion_times,
                              fresh.completion_times)


class TestTransientObservability:
    def test_metrics_snapshot_carries_transient_block(self):
        t = topo()
        h = simulate(t, flows(), fidelity="approx").makespan
        tl = FaultTimeline.sample(t, cables=6, seed=3, horizon=h * 0.8,
                                  mttr=h * 0.2)
        collector = MetricsCollector(t.links.num_links)
        result = simulate(t, flows(), fidelity="approx", fault_timeline=tl,
                          metrics=collector)
        snap = result.metrics
        validate_snapshot(snap)
        assert snap["transient"] == result.transient
        assert snap["transient"]["flows_rerouted"] > 0
        # fault-boundary reallocations are tallied alongside the others
        assert snap["allocator"]["fault_reallocations"] > 0

    def test_healthy_snapshot_has_no_transient_block(self):
        t = topo()
        collector = MetricsCollector(t.links.num_links)
        result = simulate(t, flows(), fidelity="approx", metrics=collector)
        validate_snapshot(result.metrics)
        assert "transient" not in result.metrics
        assert result.metrics["allocator"]["fault_reallocations"] == 0
