"""Unit and property tests for e-cube routing on generalised hypercubes."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import ecube

radices_st = st.lists(st.integers(min_value=2, max_value=6),
                      min_size=1, max_size=4)


def coords_for(radices):
    return st.tuples(*[st.integers(0, k - 1) for k in radices])


class TestPath:
    def test_identity(self):
        assert ecube.path((1, 2), (1, 2), (4, 4)) == [(1, 2)]

    def test_single_hop_corrects_whole_dimension(self):
        assert ecube.path((0, 0), (3, 0), (4, 4)) == [(0, 0), (3, 0)]

    def test_dimension_order(self):
        assert ecube.path((0, 0), (3, 2), (4, 4)) == [(0, 0), (3, 0), (3, 2)]

    def test_out_of_range_rejected(self):
        with pytest.raises(RoutingError):
            ecube.path((4, 0), (0, 0), (4, 4))

    @given(radices_st, st.data())
    @settings(max_examples=200)
    def test_path_properties(self, radices, data):
        src = data.draw(coords_for(radices))
        dst = data.draw(coords_for(radices))
        p = ecube.path(src, dst, radices)
        assert p[0] == src and p[-1] == dst
        assert len(p) - 1 == ecube.hamming(src, dst, radices)
        for a, b in zip(p, p[1:]):
            assert sum(1 for x, y in zip(a, b) if x != y) == 1

    @given(radices_st, st.data())
    @settings(max_examples=100)
    def test_minimality(self, radices, data):
        # e-cube is minimal: no path in the GHC graph can be shorter than
        # the number of differing coordinates
        src = data.draw(coords_for(radices))
        dst = data.draw(coords_for(radices))
        assert len(ecube.path(src, dst, radices)) - 1 <= len(radices)


class TestNeighbors:
    def test_count_equals_degree(self):
        radices = (3, 4)
        nbs = ecube.neighbors((0, 0), radices)
        assert len(nbs) == ecube.degree(radices) == 2 + 3

    def test_all_single_coordinate_changes(self):
        for nb in ecube.neighbors((1, 1), (3, 3)):
            assert sum(1 for a, b in zip(nb, (1, 1)) if a != b) == 1

    @given(radices_st, st.data())
    @settings(max_examples=50)
    def test_symmetry(self, radices, data):
        c = data.draw(coords_for(radices))
        for nb in ecube.neighbors(c, radices):
            assert c in ecube.neighbors(nb, radices)


class TestAverageDistance:
    @pytest.mark.parametrize("radices", [(2,), (2, 2), (3, 4), (2, 3, 4)])
    def test_matches_enumeration(self, radices):
        verts = list(itertools.product(*[range(k) for k in radices]))
        total = sum(ecube.hamming(a, b, radices)
                    for a in verts for b in verts if a != b)
        expected = total / (len(verts) * (len(verts) - 1))
        assert ecube.average_distance(radices) == pytest.approx(expected)

    def test_trivial(self):
        assert ecube.average_distance((1,)) == 0.0
