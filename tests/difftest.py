"""Differential-test harness for engine-equivalence suites.

Two suites drive this module:

* ``tests/test_kernel_diff.py`` runs one scenario under every *available*
  fill-kernel backend (:func:`repro.engine.kernels.use` pins the backend
  for every :class:`~repro.engine.active.ActiveSet` the scenario builds)
  and asserts the results are bitwise-identical;
* ``tests/test_batched_loop.py`` runs one scenario under the vectorised
  and the historical per-flow event loops (``REPRO_EVENT_BATCH``) with
  the same assertion.

"Bitwise-identical" here means every float in the
:class:`~repro.engine.results.SimulationResult` compares equal (NaN
patterns included), not merely close: the compiled kernels and the
batched event loop are specified as *exact* replacements, so any ULP of
drift is a bug, not noise.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.engine import kernels
from repro.engine.results import SimulationResult


def assert_results_identical(a: SimulationResult, b: SimulationResult,
                             label_a: str, label_b: str) -> None:
    """Assert two simulation results are bitwise-identical."""
    ctx = f"[{label_a} vs {label_b}]"
    assert a.makespan == b.makespan, \
        f"{ctx} makespan {a.makespan!r} != {b.makespan!r}"
    np.testing.assert_array_equal(
        a.completion_times, b.completion_times,
        err_msg=f"{ctx} completion_times differ")
    np.testing.assert_array_equal(
        a.start_times, b.start_times, err_msg=f"{ctx} start_times differ")
    assert a.events == b.events, \
        f"{ctx} events {a.events} != {b.events}"
    assert a.reallocations == b.reallocations, \
        f"{ctx} reallocations {a.reallocations} != {b.reallocations}"
    assert a.fidelity == b.fidelity and a.num_flows == b.num_flows, ctx
    assert a.transient == b.transient, \
        f"{ctx} transient counters {a.transient} != {b.transient}"


def assert_same_allocator_work(a: SimulationResult,
                               b: SimulationResult,
                               label_a: str, label_b: str) -> None:
    """Assert two runs did the same full-pass/warm-fill split.

    Separate from :func:`assert_results_identical` because the per-flow
    and batched event loops legitimately differ here (admission
    granularity changes how often the warm path applies) while kernel
    backends must not.
    """
    ctx = f"[{label_a} vs {label_b}]"
    for key in ("full_passes", "warm_fills", "relevel_fills"):
        assert a.allocator_stats[key] == b.allocator_stats[key], \
            (f"{ctx} allocator_stats[{key!r}] "
             f"{a.allocator_stats[key]} != {b.allocator_stats[key]}")


def run_all_backends(scenario: Callable[[], SimulationResult]
                     ) -> tuple[SimulationResult, list[str]]:
    """Run ``scenario`` once per available kernel backend and diff.

    The numpy reference backend always runs (and runs *first*), so the
    pure-NumPy path is exercised even on machines with the ``[fast]``
    extra installed.  Returns the reference result and the list of
    backends exercised.
    """
    names = list(kernels.available())
    assert names[0] == "numpy"
    results: list[tuple[str, SimulationResult]] = []
    for name in names:
        with kernels.use(name):
            results.append((name, scenario()))
    base_name, base = results[0]
    for name, other in results[1:]:
        assert_results_identical(base, other, base_name, name)
        assert_same_allocator_work(base, other, base_name, name)
    return base, names
