"""Tests for the torus/mesh topology."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError, TopologyError
from repro.routing import dor
from repro.topology import TorusTopology, path_length_stats


def _route_is_walk(topo, src, dst):
    """Assert a vertex path is a contiguous walk over registered links."""
    p = topo.vertex_path(src, dst)
    assert p[0] == src and p[-1] == dst
    for a, b in zip(p, p[1:]):
        assert topo.links.has(a, b)
    return p


class TestConstruction:
    def test_counts(self, small_torus):
        # 4x4x2: dims>2 contribute 2 directed links/node, dim 2 contributes 1
        assert small_torus.num_endpoints == 32
        assert small_torus.num_switches == 0
        assert small_torus.num_network_links == 32 * (2 + 2 + 1)

    def test_invalid_dims(self):
        with pytest.raises(TopologyError):
            TorusTopology(())
        with pytest.raises(TopologyError):
            TorusTopology((4, 0))

    def test_cubic_factory(self):
        topo = TorusTopology.cubic(64)
        assert topo.dims == (4, 4, 4)

    def test_paper_full_scale_dims(self):
        # no build at 131072 — just the planner
        from repro.topology.planner import torus_dims
        assert torus_dims(131072) == (32, 64, 64)

    def test_connected(self, small_torus):
        assert nx.is_connected(small_torus.to_networkx())

    def test_regular_degree(self):
        g = TorusTopology((4, 4, 4)).to_networkx()
        assert all(d == 6 for _, d in g.degree())


class TestRouting:
    @given(st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=100)
    def test_route_is_valid_walk(self, src, dst):
        topo = TorusTopology((4, 4, 2))
        p = _route_is_walk(topo, src, dst)
        assert len(set(p)) == len(p)  # loop-free

    def test_route_length_is_wrap_manhattan(self, small_torus):
        for src, dst in [(0, 31), (5, 20), (0, 0), (3, 4)]:
            expected = dor.distance(
                dor.index_to_coord(src, small_torus.dims),
                dor.index_to_coord(dst, small_torus.dims),
                small_torus.dims)
            assert small_torus.hops(src, dst) == expected

    def test_routing_is_minimal(self, small_torus):
        g = small_torus.to_networkx()
        for src in range(0, 32, 5):
            lengths = nx.single_source_shortest_path_length(g, src)
            for dst in range(32):
                assert small_torus.hops(src, dst) == lengths[dst]

    def test_route_includes_nic_links(self, small_torus):
        route = small_torus.route(0, 1)
        assert route[0] == small_torus.injection_links[0]
        assert route[-1] == small_torus.consumption_links[1]

    def test_endpoint_range_checked(self, small_torus):
        with pytest.raises(RoutingError):
            small_torus.route(0, 32)


class TestMetrics:
    def test_diameter_small(self, small_torus):
        brute = max(small_torus.hops(s, d)
                    for s in range(32) for d in range(32))
        assert small_torus.routing_diameter() == brute == 5

    def test_diameter_full_scale_formula(self):
        # paper: 32x64x64 torus has diameter 80
        t = TorusTopology.__new__(TorusTopology)
        t.dims = (32, 64, 64)
        t.wraparound = True
        assert TorusTopology.routing_diameter(t) == 80

    def test_average_distance_closed_form_matches_enumeration(self):
        topo = TorusTopology((3, 4))
        stats = path_length_stats(topo, max_pairs=10_000)
        assert stats.exact
        assert stats.average == pytest.approx(
            topo.average_distance_closed_form())

    def test_average_distance_full_scale(self):
        # paper: ~40 for the 131,072-endpoint torus
        t = TorusTopology.__new__(TorusTopology)
        t.dims = (32, 64, 64)
        t.num_endpoints = 131072
        assert TorusTopology.average_distance_closed_form(t) == \
            pytest.approx(40.0, rel=1e-4)


class TestMesh:
    def test_no_wraparound_links(self):
        mesh = TorusTopology((4, 4), wraparound=False)
        assert not mesh.links.has(0, 3)   # x=0 -> x=3 only exists on a torus
        assert mesh.name == "mesh"

    def test_diameter(self):
        mesh = TorusTopology((4, 4), wraparound=False)
        assert mesh.routing_diameter() == 6
        assert mesh.hops(0, 15) == 6

    def test_routes_stay_in_bounds(self):
        mesh = TorusTopology((3, 3), wraparound=False)
        for s in range(9):
            for d in range(9):
                _route_is_walk(mesh, s, d)


class TestNicLinks:
    def test_one_pair_per_endpoint(self, small_torus):
        assert len(small_torus.injection_links) == 32
        assert len(small_torus.consumption_links) == 32
        all_ids = np.concatenate([small_torus.injection_links,
                                  small_torus.consumption_links])
        assert len(np.unique(all_ids)) == 64

    def test_self_route_uses_only_nic(self, small_torus):
        route = small_torus.route(7, 7)
        assert route == [small_torus.injection_links[7],
                         small_torus.consumption_links[7]]
