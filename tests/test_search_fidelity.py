"""Tests for the multi-fidelity ladder and its rank-0 static cache."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.search.fidelity import (RANK_FULL, RANK_PILOT, RANK_STATIC,
                                   FidelityLadder, LadderEvaluator)
from repro.search.space import Candidate
from repro.topology.cost import CostModel, upper_tier_switches

WORKLOADS = ("reduce", "permutation")


def ladder_64(**kw) -> FidelityLadder:
    return FidelityLadder.for_scale(64, WORKLOADS, static_pairs=300, **kw)


class TestLadder:
    def test_pilot_defaults_to_512_cap(self):
        assert FidelityLadder.for_scale(4096, WORKLOADS).pilot_endpoints == 512
        assert FidelityLadder.for_scale(64, WORKLOADS).pilot_endpoints == 64

    def test_equal_scales_collapse_rank1(self):
        collapsed = ladder_64()
        assert collapsed.collapsed()
        assert collapsed.sim_ranks() == (RANK_FULL,)
        tall = FidelityLadder.for_scale(512, WORKLOADS, pilot_endpoints=64)
        assert not tall.collapsed()
        assert tall.sim_ranks() == (RANK_PILOT, RANK_FULL)
        assert tall.rank_scale(RANK_PILOT) == 64
        assert tall.rank_scale(RANK_FULL) == 512

    def test_pilot_above_target_rejected(self):
        with pytest.raises(ConfigError, match="exceeds"):
            FidelityLadder.for_scale(64, WORKLOADS, pilot_endpoints=512)

    def test_empty_workload_set_rejected(self):
        with pytest.raises(ConfigError, match="workload"):
            FidelityLadder.for_scale(64, ())


class TestStaticCache:
    def test_repeated_candidates_never_rebuild(self):
        ev = LadderEvaluator(ladder_64())
        cand = Candidate("nesttree", 2, 2)
        first = ev.rank0([cand])
        builds = ev.static_builds  # candidate + fattree reference
        assert builds == 2 and ev.static_cache_hits == 0
        second = ev.rank0([cand, cand])
        assert second[cand.label()] == first[cand.label()]
        assert ev.static_builds == builds  # nothing rebuilt...
        # ...every lookup was a hit: the fattree reference + 2x candidate
        assert ev.static_cache_hits == 3

    def test_fault_levels_share_the_healthy_metrics(self):
        ev = LadderEvaluator(ladder_64())
        healthy = Candidate("nestghc", 2, 4)
        degraded = Candidate("nestghc", 2, 4, fail_links=2)
        ev.rank0([healthy])
        builds = ev.static_builds
        out = ev.rank0([degraded])
        assert ev.static_builds == builds
        # fattree reference hit + the degraded candidate reusing the
        # healthy topology's metrics
        assert ev.static_cache_hits == 2
        assert out[degraded.label()] is not None

    def test_proxy_objectives_carry_real_cost_model(self):
        model = CostModel(switch_cost=1.5, switch_power=0.5)
        ev = LadderEvaluator(ladder_64(), cost_model=model)
        cand = Candidate("nesttree", 2, 2)
        objectives = ev.rank0([cand])[cand.label()]
        switches = upper_tier_switches("nesttree", 64, 2)
        assert objectives.cost == pytest.approx(switches * 1.5 / 64)
        assert objectives.power == pytest.approx(switches * 0.5 / 64)


class TestSimulationRanks:
    def test_full_rank_normalises_to_fattree(self):
        ev = LadderEvaluator(ladder_64())
        cands = [Candidate("nesttree", 2, 2), Candidate("nestghc", 2, 4)]
        out = ev.simulate_rank(cands, RANK_FULL)
        assert set(out) == {c.label() for c in cands}
        for objectives in out.values():
            assert objectives is not None and objectives.makespan > 0
        refs = ev.reference_makespans[RANK_FULL]
        assert set(WORKLOADS) <= set(refs["fattree"])
        assert set(WORKLOADS) <= set(refs["torus"])

    def test_static_rank_is_not_simulatable(self):
        ev = LadderEvaluator(ladder_64())
        with pytest.raises(ConfigError, match="not a simulation rank"):
            ev.simulate_rank([], RANK_STATIC)

    def test_checkpoints_are_per_rank(self, tmp_path):
        base = tmp_path / "search"
        ev = LadderEvaluator(ladder_64(), checkpoint=base)
        cand = Candidate("nesttree", 2, 2)
        ev.simulate_rank([cand], RANK_FULL)
        assert (tmp_path / "search.rank2.jsonl").exists()
        assert not (tmp_path / "search.rank1.jsonl").exists()

    def test_resume_skips_completed_cells(self, tmp_path):
        base = tmp_path / "search"
        cand = Candidate("nesttree", 2, 2)
        first = LadderEvaluator(ladder_64(), checkpoint=base)
        out1 = first.simulate_rank([cand], RANK_FULL)
        ck = tmp_path / "search.rank2.jsonl"
        lines_after_first = ck.read_text()
        second = LadderEvaluator(ladder_64(), checkpoint=base, resume=True)
        out2 = second.simulate_rank([cand], RANK_FULL)
        assert out2 == out1
        # every cell came from the checkpoint: nothing was appended
        assert ck.read_text() == lines_after_first
