#!/usr/bin/env python
"""Collective-operation scaling study across topologies.

A domain-specific example: how the two collectives of the paper (the
pathological direct Reduce and the logarithmic AllReduce) scale with system
size on each topology family.  It demonstrates

* replaying one workload over many topologies,
* the consumption-port effect (Reduce identical everywhere, linear in N),
* AllReduce's log-depth scaling and its sensitivity to the network.

Run it with::

    python examples/collective_scaling.py
"""

from repro import build_topology, build_workload, simulate

SIZES = (64, 256, 512)
FAMILIES = (
    ("torus", {}),
    ("fattree", {}),
    ("nesttree", {"t": 2, "u": 2}),
    ("nestghc", {"t": 2, "u": 2}),
)


def main() -> None:
    for collective in ("reduce", "allreduce"):
        print(f"== {collective} ==")
        header = f"{'endpoints':>10} | " + " | ".join(
            f"{name:>14}" for name, _ in FAMILIES)
        print(header)
        print("-" * len(header))
        for n in SIZES:
            flows = build_workload(collective, n).build()
            cells = []
            for name, params in FAMILIES:
                topo = build_topology(name, n, **params)
                makespan = simulate(topo, flows, fidelity="approx").makespan
                cells.append(f"{makespan * 1e3:11.3f} ms")
            print(f"{n:>10} | " + " | ".join(f"{c:>14}" for c in cells))
        print()

    print("Reduce rows are identical across topologies (consumption-port")
    print("bound) and scale linearly with N; AllReduce separates the")
    print("families and scales with log2(N) x contention.")


if __name__ == "__main__":
    main()
