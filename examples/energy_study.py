#!/usr/bin/env python
"""Energy estimation study (the paper's future-work direction, implemented).

Estimates the energy of one heavy workload on every topology family,
splitting dynamic (bits x hops) from static (idle power x makespan) energy.
The interesting trade-off: the hybrids add upper-tier switches (more idle
power) but finish heavy workloads much faster than the torus — so their
*energy to solution* wins even though their *power* is higher.

Run it with::

    python examples/energy_study.py
"""

from repro import build_topology, build_workload
from repro.topology.energy import compare

ENDPOINTS = 512


def main() -> None:
    flows = build_workload("unstructuredapp", ENDPOINTS, seed=0).build()
    topologies = {
        "torus": build_topology("torus", ENDPOINTS),
        "fattree": build_topology("fattree", ENDPOINTS),
        "nesttree(2,2)": build_topology("nesttree", ENDPOINTS, t=2, u=2),
        "nesttree(2,8)": build_topology("nesttree", ENDPOINTS, t=2, u=8),
        "nestghc(2,2)": build_topology("nestghc", ENDPOINTS, t=2, u=2),
    }
    reports = compare(topologies, flows)

    print(f"Energy to solution, unstructuredapp @ {ENDPOINTS} endpoints")
    header = (f"{'topology':>14} | {'time (ms)':>9} | {'dynamic (J)':>11} | "
              f"{'static (J)':>10} | {'total (J)':>9} | {'pJ/bit':>7}")
    print(header)
    print("-" * len(header))
    for label, rep in reports.items():
        print(f"{label:>14} | {rep.duration * 1e3:>9.3f} | "
              f"{rep.dynamic_joules:>11.4f} | {rep.static_joules:>10.2f} | "
              f"{rep.total_joules:>9.2f} | "
              f"{rep.joules_per_bit * 1e12:>7.1f}")

    torus = reports["torus"]
    hybrid = reports["nesttree(2,2)"]
    extra_watts = (hybrid.static_joules / hybrid.duration
                   - torus.static_joules / torus.duration)
    ratio = hybrid.total_joules / torus.total_joules
    print(f"\nThe hybrid's switches add {extra_watts:.0f} W of idle power; "
          f"at this scale it costs {ratio:.2f}x the torus' energy to "
          f"solution.")
    print("Energy to solution = idle power x makespan (static dominates at "
          "these message sizes), so the trade-off tracks the Figure 4 "
          "makespans: at paper scale, where the torus runs up to an order "
          "of magnitude longer, the dense hybrids win it back — rerun at "
          "larger ENDPOINTS to watch the crossover.")


if __name__ == "__main__":
    main()
