#!/usr/bin/env python
"""Related-work shootout: every topology family on the same workloads.

The paper's related-work section discusses Dragonfly and Jellyfish as the
community's other answers to exascale interconnects; both are implemented
here, so this example runs the full seven-family line-up — the paper's
four evaluation topologies plus thin tree, Dragonfly and Jellyfish — on
one heavy and one light workload and on the adversarial pattern the paper
warns about for dragonflies ("pathological scenarios ... primarily with
unbalanced loads").

Run it with::

    python examples/related_work_shootout.py
"""

from repro import build_topology, build_workload, simulate
from repro.engine.flows import FlowBuilder
from repro.units import DEFAULT_LINK_CAPACITY as CAP

ENDPOINTS = 512

FAMILIES = (
    ("torus", {}),
    ("fattree", {}),
    ("thintree", {"oversubscription": 2}),
    ("nesttree", {"t": 2, "u": 2}),
    ("nestghc", {"t": 2, "u": 2}),
    ("dragonfly", {}),
    ("jellyfish", {}),
)


def group_adversarial(topo) -> "FlowBuilder":
    """Block i -> block i+1 traffic (dragonfly's worst case)."""
    b = FlowBuilder(ENDPOINTS)
    block = 32
    for i in range(ENDPOINTS):
        b.add_flow(i, (i + block) % ENDPOINTS, CAP / 50)
    return b


def main() -> None:
    topologies = {name: build_topology(name, ENDPOINTS, **params)
                  for name, params in FAMILIES}
    print(f"{'topology':>12} | {'switches':>8} | {'diameter':>8}")
    print("-" * 36)
    for name, topo in topologies.items():
        print(f"{name:>12} | {topo.num_switches:>8} | "
              f"{topo.routing_diameter():>8}")

    scenarios = {
        "unstructuredapp": build_workload("unstructuredapp", ENDPOINTS,
                                          seed=0).build(),
        "sweep3d": build_workload("sweep3d", ENDPOINTS).build(),
    }
    print()
    header = (f"{'topology':>12} | " + " | ".join(
        f"{s:>16}" for s in list(scenarios) + ["block-adversarial"]))
    print(header)
    print("-" * len(header))
    for name, topo in topologies.items():
        cells = []
        for flows in scenarios.values():
            r = simulate(topo, flows, fidelity="approx")
            cells.append(f"{r.makespan * 1e3:13.3f} ms")
        adv = simulate(topo, group_adversarial(topo).build(),
                       fidelity="approx")
        cells.append(f"{adv.makespan * 1e3:13.3f} ms")
        print(f"{name:>12} | " + " | ".join(f"{c:>16}" for c in cells))

    print("\nNote the dragonfly's block-adversarial column: consecutive")
    print("blocks map onto dragonfly groups, so the whole block squeezes")
    print("through single group-to-group cables — the unbalanced-load")
    print("pathology the paper cites as the dragonfly's weakness.")


if __name__ == "__main__":
    main()
