#!/usr/bin/env python
"""Congestion mapping with the static analysis mode.

A datacentre-flavoured example: where does hot-receiver traffic (the
paper's UnstructuredHR) pile up in a hybrid network as the uplink density
is thinned?  Uses the static analyser's per-tier load breakdown to show the
mechanism behind Figure 4's density cliff: with sparse uplinks the same
bytes squeeze through 8x fewer access links.

Run it with::

    python examples/congestion_map.py
"""

from repro import build_topology, build_workload
from repro.engine import analyze

ENDPOINTS = 512


def main() -> None:
    flows = build_workload("unstructuredhr", ENDPOINTS, seed=0).build()
    print(f"workload: unstructuredhr, {flows.num_flows} flows, "
          f"{flows.total_bits / 8 / 2**20:.0f} MiB total\n")

    header = (f"{'topology':>16} | {'bottleneck':>11} | {'uplink GiB':>10} | "
              f"{'fabric GiB':>10} | {'torus GiB':>10} | {'p99 drain':>10}")
    print(header)
    print("-" * len(header))
    for u in (1, 2, 4, 8):
        topo = build_topology("nesttree", ENDPOINTS, t=2, u=u)
        report = analyze(topo, flows)
        tiers = report.tier_loads
        p99 = report.utilisation_percentiles((99,))[99]
        print(f"{'nesttree(2,' + str(u) + ')':>16} | "
              f"{report.bottleneck_time * 1e3:8.2f} ms | "
              f"{tiers['uplinks'] / 8 / 2**30:10.3f} | "
              f"{tiers['upper_fabric'] / 8 / 2**30:10.3f} | "
              f"{tiers['lower_torus'] / 8 / 2**30:10.3f} | "
              f"{p99 * 1e3:7.2f} ms")

    print("\nThe per-uplink squeeze: total uplink bytes stay roughly flat,")
    print("but they cross N/u access links, so the bottleneck drain time")
    print("roughly doubles with each halving of the density — the")
    print("mechanism behind the paper's u >= 4 performance cliff.")


if __name__ == "__main__":
    main()
