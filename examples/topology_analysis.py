#!/usr/bin/env python
"""Static topology analysis: Tables 1 and 2 plus distance distributions.

Shows the analysis-side API (no simulation): routing-aware distance
statistics, closed-form diameters, switch counting and the calibrated
cost/power model.  With ``--full`` it runs at the paper's 131,072-endpoint
scale and prints the published values side by side (takes ~1 minute; the
default 4,096-endpoint run takes seconds).

Run it with::

    python examples/topology_analysis.py [--full]
"""

import sys

from repro.core import table1, table2
from repro.core.paperdata import PAPER_ENDPOINTS
from repro.topology import build as build_topology
from repro.topology import path_length_stats


def main() -> None:
    endpoints = PAPER_ENDPOINTS if "--full" in sys.argv else 4096

    print(table2(endpoints))
    print()
    print(table1(endpoints, max_pairs=20_000))

    # distance distribution: the histogram behind the averages ("we also
    # look at the distribution of distances", paper Section 5.1)
    print("\nDistance distribution, NestGHC(2,4) vs NestTree(2,4):")
    for family in ("nestghc", "nesttree"):
        topo = build_topology(family, min(endpoints, 4096), t=2, u=4)
        stats = path_length_stats(topo, max_pairs=20_000)
        dist = stats.distribution()
        bar = " ".join(f"{h}:{p * 100:.1f}%" for h, p in dist.items())
        print(f"  {family:>9}: {bar}")


if __name__ == "__main__":
    main()
