#!/usr/bin/env python
"""Design-space sweep: a miniature of the paper's Figures 4 and 5.

Sweeps every feasible hybrid design point (t, u) for both NestGHC and
NestTree, plus the Fattree and Torus3D baselines, over one heavy and one
light workload, then prints the normalised-execution-time series exactly
the way the paper's figures arrange them — and evaluates the paper's
qualitative claims against the measured data.

Run it with (a few minutes at the default 512 endpoints)::

    python examples/design_sweep.py [endpoints]
"""

import sys

from repro.core import DesignSpaceExplorer, claims_report, figure


def main() -> None:
    endpoints = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    explorer = DesignSpaceExplorer(endpoints, fidelity="approx",
                                   quadratic_tasks=128, progress=True)

    heavy = ["unstructuredapp", "allreduce"]
    light = ["sweep3d", "reduce"]
    table = explorer.run(heavy + light)

    print()
    print(figure(table, heavy, title="Mini Figure 4 (heavy workloads)"))
    print()
    print(figure(table, light, title="Mini Figure 5 (light workloads)"))
    print()
    print(claims_report(table, 4))
    print()
    print(claims_report(table, 5))

    # the sweet spot the paper identifies: density 1/2 .. 1/4, small subtori
    print("\nSweet-spot check (paper: one uplink per 2-4 nodes, small t):")
    for workload in heavy:
        norm = table.normalised(workload)
        best = min((v, k) for k, v in norm.items())
        print(f"  {workload:>16}: best = {best[1]} at {best[0]:.3f}x fattree")


if __name__ == "__main__":
    main()
