#!/usr/bin/env python
"""Quickstart: build a hybrid topology, run a workload, read the results.

This walks through the three core objects of the library —

* a **topology** (here the paper's NestTree(2, 2): 2x2x2 subtori nested
  into a 3-stage fattree, one uplink per two QFDBs),
* a **workload** (a recursive-doubling AllReduce across every endpoint),
* the **flow-level simulator** that runs one on the other —

and then shows the two analysis modes: dynamic (completion time under
max-min fair bandwidth sharing) and static (per-link byte loads).

Run it with::

    python examples/quickstart.py
"""

from repro import build_topology, build_workload, simulate
from repro.engine import analyze
from repro.topology import path_length_stats

ENDPOINTS = 512


def main() -> None:
    # 1. build the topology: 64 subtori of 2x2x2 QFDBs, fattree upper tier
    topo = build_topology("nesttree", ENDPOINTS, t=2, u=2)
    print(f"topology : {topo.describe()}")
    print(f"diameter : {topo.routing_diameter()} hops")
    stats = path_length_stats(topo, max_pairs=20_000)
    print(f"avg dist : {stats.average:.2f} hops "
          f"({'exact' if stats.exact else 'sampled'})")

    # 2. build the workload: one task per endpoint
    workload = build_workload("allreduce", ENDPOINTS)
    flows = workload.build()
    print(f"workload : {workload.describe()} -> {flows.num_flows} flows, "
          f"{flows.dependency_depth()} dependency levels")

    # 3a. dynamic simulation: flows share links max-min fairly, causal
    #     dependencies gate injection
    result = simulate(topo, flows)
    print(f"dynamic  : completed in {result.makespan * 1e3:.3f} ms "
          f"({result.events} events, {result.reallocations} re-allocations)")

    # 3b. static analysis: route everything at once and inspect link loads
    report = analyze(topo, flows)
    print(f"static   : bottleneck-bound {report.bottleneck_time * 1e3:.3f} ms")
    for tier, bits in report.tier_loads.items():
        print(f"           {tier:>12}: {bits / 8 / 2**20:10.1f} MiB routed")

    # 4. compare against the plain fattree baseline with the same workload
    baseline = build_topology("fattree", ENDPOINTS)
    base_result = simulate(baseline, flows)
    ratio = result.makespan / base_result.makespan
    print(f"baseline : fattree takes {base_result.makespan * 1e3:.3f} ms "
          f"-> hybrid is {ratio:.2f}x the fattree")


if __name__ == "__main__":
    main()
