#!/usr/bin/env python
"""Multi-job co-scheduling: allocation policy vs network interference.

INRFlow models "the scheduling policies (selection, allocation and
mapping)"; this example uses the co-scheduling layer to quantify what the
paper's hybrid design buys a *shared* machine: subtorus-aligned
allocations isolate each job's local traffic in its own lower-tier torus,
while fragmented allocations push everything through the shared upper
fabric.

Four halo-exchange jobs plus one bisection-stressor job are packed onto a
NestTree(2,2) machine under three allocation policies; the table reports
each job's slowdown relative to running alone on the same nodes.

Run it with::

    python examples/multi_job_interference.py
"""

from repro import build_topology
from repro.scheduling import Job, coschedule
from repro.scheduling.allocator import by_name

ENDPOINTS = 512


def main() -> None:
    topo = build_topology("nesttree", ENDPOINTS, t=2, u=2)
    jobs = [
        Job("halo-a", "nearneighbors", 64,
            params={"dims": 3, "diagonals": False}, seed=1),
        Job("halo-b", "nearneighbors", 64,
            params={"dims": 3, "diagonals": False}, seed=2),
        Job("halo-c", "nearneighbors", 64,
            params={"dims": 3, "diagonals": False}, seed=3),
        Job("halo-d", "nearneighbors", 64,
            params={"dims": 3, "diagonals": False}, seed=4),
        Job("stress", "bisection", 128, params={"rounds": 4}, seed=5),
    ]
    sizes = [j.tasks for j in jobs]

    print(f"machine: {topo.describe()}")
    for job in jobs:
        print(f"  {job.describe()}")
    print()
    header = (f"{'policy':>12} | " +
              " | ".join(f"{j.name:>8}" for j in jobs) +
              f" | {'mean':>6}")
    print(header)
    print("-" * len(header))
    for policy in ("aligned", "contiguous", "random"):
        result = coschedule(topo, jobs, by_name(policy, topo, sizes, seed=9))
        cells = " | ".join(f"{j.slowdown:7.2f}x" for j in result.jobs)
        print(f"{policy:>12} | {cells} | {result.mean_slowdown():5.2f}x")

    print("\nAligned allocation keeps every halo job at ~1.0x (its stencil")
    print("never leaves its own subtori); random fragmentation forces the")
    print("same traffic through the shared upper tier, where the stressor")
    print("job's exchanges collide with it.")


if __name__ == "__main__":
    main()
