#!/usr/bin/env python
"""Fault-tolerance study (the paper's future-work direction, implemented).

Three questions, answered with the analysis in ``repro.topology.faults``:

1. How fragile is each topology's *deterministic* routing to random cable
   failures (the paper's routing functions offer one path per pair)?
2. How much of that breakage is fundamental (physically disconnected) vs
   recoverable by an adaptive routing layer?
3. For the hybrids: how well does a concrete, implementable mechanism —
   falling back to the nearest surviving uplink when a designated uplink
   port dies — keep inter-subtorus traffic flowing?

Run it with::

    python examples/fault_tolerance.py
"""

from repro import build_topology
from repro.topology.faults import (failover_coverage, sample_link_failures,
                                   vulnerability)

ENDPOINTS = 512


def main() -> None:
    print("1-2. Deterministic-routing vulnerability to random cable loss")
    print(f"{'topology':>16} | {'cables lost':>11} | {'pairs broken':>12} | "
          f"{'reroutable':>10}")
    print("-" * 62)
    for label, family, params in (
            ("torus", "torus", {}),
            ("fattree", "fattree", {}),
            ("nesttree(2,2)", "nesttree", {"t": 2, "u": 2}),
            ("nestghc(2,2)", "nestghc", {"t": 2, "u": 2})):
        topo = build_topology(family, ENDPOINTS, **params)
        for cables in (4, 16):
            failed = sample_link_failures(topo, cables, seed=7)
            report = vulnerability(topo, failed, pairs=400, seed=7)
            print(f"{label:>16} | {cables:>11} | "
                  f"{report.broken_fraction * 100:>10.2f}% | "
                  f"{report.reroutable_fraction * 100:>9.1f}%")

    print()
    print("3. Hybrid uplink fail-over (nesttree(2,2), dead uplink PORTS)")
    import numpy as np

    topo = build_topology("nesttree", ENDPOINTS, t=2, u=2)
    uplinked = [e for e in range(ENDPOINTS)
                if (e % topo.plan.nodes) in topo.plan.uplink_rank]
    shuffled = np.random.default_rng(7).permutation(uplinked)
    for dead_count in (0, 8, 32, 128):
        dead = set(int(e) for e in shuffled[:dead_count])
        coverage = failover_coverage(topo, dead, pairs=400, seed=7)
        print(f"  {dead_count:>3} randomly dead ports (of {len(uplinked)}) "
              f"-> {coverage * 100:6.2f}% of inter-subtorus pairs served")
    print("\nEvery subtorus has multiple uplinks at u<=4, so scattered port")
    print("failures are absorbed by the nearest-surviving-uplink fail-over;")
    print("coverage only drops once whole subtori lose every port — one")
    print("concrete payoff of densifying the uplinks.")


if __name__ == "__main__":
    main()
