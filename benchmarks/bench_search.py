"""Bench: the multi-fidelity design search end to end.

Runs ``run_search`` at the bench scale (default 512 endpoints) with the
default workload mix and writes the resulting front to
``benchmarks/results/search.txt``.  The assertions are about the
subsystem's economics, not absolute time: the rank-0 cache must absorb
repeated proposals, and successive halving must keep the full-fidelity
simulation count strictly below exhaustive coverage of the space.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_ENDPOINTS, write_result
from repro.search import (DesignSpace, FidelityLadder, LadderEvaluator,
                          make_strategy, render_report, run_search)
from repro.search.fidelity import DEFAULT_WORKLOADS, RANK_FULL

BUDGET = 40


def search_once(strategy: str):
    ladder = FidelityLadder.for_scale(BENCH_ENDPOINTS, DEFAULT_WORKLOADS,
                                      seed=7)
    space = DesignSpace(endpoints=BENCH_ENDPOINTS,
                        pilot_endpoints=ladder.pilot_endpoints)
    evaluator = LadderEvaluator(ladder)
    result = run_search(space, make_strategy(strategy, space, seed=7),
                        ladder, budget=BUDGET, evaluator=evaluator)
    return result, evaluator, space


@pytest.mark.benchmark(group="search")
def test_search_evolution(benchmark):
    result, evaluator, space = benchmark.pedantic(
        lambda: search_once("evolution"), rounds=1, iterations=1)
    lines = [f"Design search @ {BENCH_ENDPOINTS} endpoints "
             f"(evolution, budget {BUDGET}, seed 7)"]
    for row in result.front_rows():
        o = row["objectives"]
        lines.append(f"{row['label']:>16} | {o['makespan']:.4f} "
                     f"{o['cost'] * 100:6.2f}% {o['power'] * 100:6.2f}%"
                     + ("  *" if row["baseline"] else ""))
    write_result("search.txt", "\n".join(lines))
    # the ladder economics: repeats hit the cache, halving spares rank 2
    assert evaluator.static_cache_hits > 0
    assert evaluator.sim_candidates[RANK_FULL] < space.size()
    assert len(result.front.members()) >= 2


@pytest.mark.benchmark(group="search")
def test_search_deterministic(benchmark):
    """Two identical searches render byte-identical reports."""
    first = render_report(search_once("grid")[0])
    second = benchmark.pedantic(
        lambda: render_report(search_once("grid")[0]),
        rounds=1, iterations=1)
    assert first == second
