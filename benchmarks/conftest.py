"""Shared benchmark infrastructure.

Benchmarks default to a scaled-down system so ``pytest benchmarks/
--benchmark-only`` completes in minutes; set ``REPRO_BENCH_ENDPOINTS`` (and
optionally ``REPRO_BENCH_TASKS`` for the quadratic workloads) to raise the
scale — the headline EXPERIMENTS.md run uses 4096.  ``REPRO_BENCH_JOBS``
fans each figure sweep out over the parallel sweep runner (default 1:
serial, which also lets every bench share one in-process topology cache).

Each figure bench simulates one workload across the whole design space and
deposits its records into a session-wide table; at session teardown the
assembled Figure 4/5 reports (normalised series + the paper's shape checks)
are written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import DesignSpaceExplorer
from repro.core.explorer import ResultTable

BENCH_ENDPOINTS = int(os.environ.get("REPRO_BENCH_ENDPOINTS", "512"))
BENCH_TASKS = int(os.environ.get("REPRO_BENCH_TASKS", "128"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def sweep_jobs() -> int:
    """Worker count for the figure sweeps (REPRO_BENCH_JOBS)."""
    return BENCH_JOBS


def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def explorer() -> DesignSpaceExplorer:
    """One explorer (and topology cache) shared by every figure bench."""
    return DesignSpaceExplorer(BENCH_ENDPOINTS, fidelity="approx",
                               quadratic_tasks=BENCH_TASKS, seed=0)


class FigureCollector:
    """Accumulates per-workload sweep records and renders the figure."""

    def __init__(self, figure_no: int, endpoints: int) -> None:
        self.figure_no = figure_no
        self.table = ResultTable(endpoints=endpoints, fidelity="approx")

    def absorb(self, table: ResultTable) -> None:
        self.table.records.extend(table.records)

    def render(self) -> str:
        from repro.core import claims_report, figure

        workloads = self.table.workloads()
        if not workloads:
            return f"Figure {self.figure_no}: no results collected"
        text = figure(self.table, workloads,
                      title=f"Figure {self.figure_no}")
        text += "\n\n" + claims_report(self.table, self.figure_no)
        return text


@pytest.fixture(scope="session")
def fig4_collector():
    collector = FigureCollector(4, BENCH_ENDPOINTS)
    yield collector
    write_result("fig4_report.txt", collector.render())


@pytest.fixture(scope="session")
def fig5_collector():
    collector = FigureCollector(5, BENCH_ENDPOINTS)
    yield collector
    write_result("fig5_report.txt", collector.render())
