"""Benches for the future-work extensions (paper Section 6).

The paper's conclusions name three follow-on directions; each is
implemented in this repository and exercised here:

* **energy estimation** — energy-to-solution of a heavy workload across
  the design space (static idle power x makespan + dynamic bit-hop
  energy);
* **fault tolerance** — deterministic-routing vulnerability under random
  cable loss, and the hybrids' uplink fail-over coverage;
* **bandwidth scheduling** — weighted max-min flow priorities: a critical
  flow's speedup and the cost to background traffic.

Plus the **bisection-width model** cross-check: the static bisection
cables per endpoint must rank topologies the same way the dynamic
Bisection workload does.  Results land in
``benchmarks/results/extensions.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BENCH_ENDPOINTS, write_result
from repro import build_topology, build_workload, simulate
from repro.engine import analyze
from repro.engine.flows import FlowBuilder
from repro.topology.bisection import bisection_per_endpoint
from repro.topology.energy import compare as energy_compare
from repro.topology.faults import (failover_coverage, sample_link_failures,
                                   vulnerability)
from repro.units import DEFAULT_LINK_CAPACITY as CAP

_LINES: list[str] = []


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    yield
    write_result("extensions.txt", "\n".join(_LINES))


@pytest.mark.benchmark(group="extensions")
def test_energy_to_solution(benchmark):
    flows = build_workload("unstructuredapp", BENCH_ENDPOINTS, seed=0).build()
    topologies = {
        "torus": build_topology("torus", BENCH_ENDPOINTS),
        "fattree": build_topology("fattree", BENCH_ENDPOINTS),
        "nesttree(2,2)": build_topology("nesttree", BENCH_ENDPOINTS,
                                        t=2, u=2),
        "nesttree(2,8)": build_topology("nesttree", BENCH_ENDPOINTS,
                                        t=2, u=8),
    }
    reports = benchmark.pedantic(
        lambda: energy_compare(topologies, flows), rounds=1, iterations=1)
    for label, rep in reports.items():
        _LINES.append(f"[energy] {label}: {rep.summary()}")
    # static energy dominates at these message sizes, so energy tracks
    # makespan: the starved u=8 hybrid burns the most
    assert reports["nesttree(2,8)"].total_joules == max(
        r.total_joules for r in reports.values())
    # every report conserves: total = static + dynamic
    for rep in reports.values():
        assert rep.total_joules == pytest.approx(
            rep.static_joules + rep.dynamic_joules)


@pytest.mark.benchmark(group="extensions")
def test_fault_vulnerability(benchmark):
    def run():
        out = {}
        for label, family, params in (
                ("torus", "torus", {}),
                ("nesttree(2,2)", "nesttree", {"t": 2, "u": 2})):
            topo = build_topology(family, BENCH_ENDPOINTS, **params)
            failed = sample_link_failures(topo, 16, seed=3)
            out[label] = vulnerability(topo, failed, pairs=300, seed=3)
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, rep in reports.items():
        _LINES.append(f"[faults] {label}: {rep.summary()}")
        assert rep.broken_pairs >= 0
        assert rep.disconnected_pairs <= rep.broken_pairs
    # the torus has enough path diversity that cable loss rarely cuts it
    assert reports["torus"].reroutable_fraction > 0.8


@pytest.mark.benchmark(group="extensions")
def test_uplink_failover(benchmark):
    topo = build_topology("nesttree", BENCH_ENDPOINTS, t=2, u=2)
    uplinked = [e for e in range(topo.num_endpoints)
                if (e % topo.plan.nodes) in topo.plan.uplink_rank]
    shuffled = np.random.default_rng(5).permutation(uplinked)

    def run():
        return {k: failover_coverage(
            topo, set(int(x) for x in shuffled[:k]), pairs=300, seed=5)
            for k in (0, len(uplinked) // 16, len(uplinked) // 2)}

    coverage = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, c in coverage.items():
        _LINES.append(f"[failover] {k} dead ports -> {c * 100:.2f}% served")
    assert coverage[0] == 1.0
    ks = sorted(coverage)
    assert all(coverage[a] >= coverage[b] for a, b in zip(ks, ks[1:]))


@pytest.mark.benchmark(group="extensions")
def test_priority_scheduling(benchmark):
    """Weighted max-min: a prioritised flow overtakes background traffic."""
    n = 64
    topo = build_topology("fattree", n)

    def run():
        out = {}
        for label, weight in (("unweighted", 1.0), ("priority x8", 8.0)):
            b = FlowBuilder(n)
            critical = b.add_flow(0, n - 1, CAP / 4, weight=weight)
            for i in range(1, 32):
                b.add_flow(0, (i * 7) % n, CAP / 4)  # background from task 0
            result = simulate(topo, b.build(), fidelity="exact")
            out[label] = (result.completion_times[critical], result.makespan)
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, (crit, total) in times.items():
        _LINES.append(f"[priority] {label}: critical flow {crit * 1e3:.3f} ms"
                      f" (workload {total * 1e3:.3f} ms)")
    # the prioritised run delivers the critical flow much sooner without
    # changing the overall (injection-bound) makespan
    assert times["priority x8"][0] < 0.5 * times["unweighted"][0]
    assert times["priority x8"][1] == pytest.approx(times["unweighted"][1],
                                                    rel=0.05)


@pytest.mark.benchmark(group="extensions")
def test_bisection_model_predicts_bisection_workload(benchmark):
    """Static bisection/endpoint must rank like the Bisection makespans."""
    flows = build_workload("bisection", BENCH_ENDPOINTS, rounds=2,
                           seed=0).build()
    topologies = {
        "fattree": build_topology("fattree", BENCH_ENDPOINTS),
        "nesttree(2,2)": build_topology("nesttree", BENCH_ENDPOINTS,
                                        t=2, u=2),
        "nesttree(2,8)": build_topology("nesttree", BENCH_ENDPOINTS,
                                        t=2, u=8),
    }

    def run():
        return {label: (bisection_per_endpoint(t),
                        simulate(t, flows, fidelity="approx").makespan)
                for label, t in topologies.items()}

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, (width, makespan) in cells.items():
        _LINES.append(f"[bisection] {label}: {width:.4f} cables/endpoint, "
                      f"workload {makespan * 1e3:.3f} ms")
    by_width = sorted(cells, key=lambda k: -cells[k][0])   # widest first
    by_speed = sorted(cells, key=lambda k: cells[k][1])    # fastest first
    assert by_width == by_speed
