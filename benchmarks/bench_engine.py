"""Bench: incremental vs rebuild allocator on the exact-fidelity hot path.

Times the same (workload, topology) cells under ``fidelity="exact"`` with
the persistent incremental :class:`~repro.engine.active.ActiveSet`
allocator and with the historical rebuild-per-event baseline
(``allocator="rebuild"``), asserts both produce identical makespans and
event counts, and writes the measured speedups to
``benchmarks/results/BENCH_engine.json`` — the machine-readable record
EXPERIMENTS.md quotes.

The route cache is warmed by an untimed approx-fidelity run first, so
neither allocator pays route-construction cost inside the timed region —
the comparison isolates pure allocation work.  The headline run
(``REPRO_BENCH_ENDPOINTS=4096``) must show >= 2x on the allreduce and
unstructuredhr cells; the permutation cell showcases the warm path
(chained identical-route releases) where nearly every allocation is an
O(changed) fill.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import BENCH_ENDPOINTS, RESULTS_DIR
from repro.engine import simulate
from repro.topology import build as build_topology
from repro.workloads import build as build_workload

#: Timed repetitions per allocator; the minimum is reported (least-noise).
_ROUNDS = 2

#: Skip repeat rounds once a single round exceeds this (seconds) — the
#: rebuild baseline runs minutes per round at headline scale, where the
#: measured gap is far wider than round-to-round noise anyway.
_LONG_ROUND_S = 5.0

#: Benchmarked workload cells (exact fidelity, one topology).
_WORKLOADS = ("allreduce", "unstructuredhr", "permutation")

#: Speedup floor enforced at headline scale (the ISSUE acceptance bound).
_HEADLINE_ENDPOINTS = 4096
_HEADLINE_SPEEDUP = 2.0
_HEADLINE_CELLS = ("allreduce", "unstructuredhr")


def _timed(topo, flows, route_cache, allocator):
    best = float("inf")
    last = None
    for _ in range(_ROUNDS):
        t0 = time.perf_counter()
        result = simulate(topo, flows, fidelity="exact",
                          route_cache=route_cache, allocator=allocator)
        best = min(best, time.perf_counter() - t0)
        last = result
        if best > _LONG_ROUND_S:
            break
    return best, last


@pytest.mark.benchmark(group="engine")
def test_engine_allocator_speedup(benchmark):
    """Measure rebuild vs incremental and persist the record."""
    topo = build_topology("nesttree", BENCH_ENDPOINTS, t=2, u=4)
    route_cache: dict = {}
    workloads = {}
    for name in _WORKLOADS:
        # repeated permutations chain identical-route releases — the warm
        # path's steady state; the other cells use their paper defaults
        kwargs = {"repetitions": 8} if name == "permutation" else {}
        workloads[name] = build_workload(name, BENCH_ENDPOINTS, seed=0,
                                         **kwargs).build()

    def run():
        out = {}
        for name, flows in workloads.items():
            # warm the route cache outside the timed region so both
            # allocators pay zero route-construction cost
            simulate(topo, flows, fidelity="approx",
                     route_cache=route_cache)
            reb_s, reb = _timed(topo, flows, route_cache, "rebuild")
            inc_s, inc = _timed(topo, flows, route_cache, "incremental")
            out[name] = (reb_s, reb, inc_s, inc)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    cells = {}
    for name, (reb_s, reb, inc_s, inc) in results.items():
        # the incremental allocator is exact: identical event sequence
        assert inc.events == reb.events, name
        assert inc.makespan == pytest.approx(reb.makespan, rel=1e-9), name
        assert inc.allocator_stats["allocator"] == "incremental"
        assert reb.allocator_stats["warm_fills"] == 0
        cells[name] = {
            "rebuild_seconds": reb_s,
            "incremental_seconds": inc_s,
            "speedup": reb_s / inc_s,
            "makespan_s": inc.makespan,
            "events": inc.events,
            "full_passes": inc.allocator_stats["full_passes"],
            "warm_fills": inc.allocator_stats["warm_fills"],
        }

    # chained identical-route releases are the warm path's home turf
    assert cells["permutation"]["warm_fills"] > 0

    if BENCH_ENDPOINTS >= _HEADLINE_ENDPOINTS:
        for name in _HEADLINE_CELLS:
            assert cells[name]["speedup"] >= _HEADLINE_SPEEDUP, \
                f"{name}: {cells[name]['speedup']:.2f}x"

    record = {
        "bench": "engine",
        "schema": "repro-bench-engine-v1",
        "endpoints": BENCH_ENDPOINTS,
        "topology": "nesttree(2,4)",
        "fidelity": "exact",
        "rounds": _ROUNDS,
        "cells": cells,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_engine.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    assert out.exists()
