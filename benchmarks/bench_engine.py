"""Bench: incremental vs rebuild allocator on the exact-fidelity hot path.

Times the same (workload, topology) cells under ``fidelity="exact"`` with
the persistent incremental :class:`~repro.engine.active.ActiveSet`
allocator and with the historical rebuild-per-event baseline
(``allocator="rebuild"``), asserts both produce identical makespans and
event counts, and writes the measured speedups to
``benchmarks/results/BENCH_engine.json`` — the machine-readable record
EXPERIMENTS.md quotes.

The route cache is warmed by an untimed approx-fidelity run first, so
neither allocator pays route-construction cost inside the timed region —
the comparison isolates pure allocation work.  The headline run
(``REPRO_BENCH_ENDPOINTS=4096``) must show >= 2x on the allreduce and
unstructuredhr cells; the permutation cell showcases the warm path
(chained identical-route releases) where nearly every allocation is an
O(changed) fill.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from conftest import BENCH_ENDPOINTS, RESULTS_DIR
from repro.engine import simulate
from repro.topology import build as build_topology
from repro.workloads import build as build_workload

#: Timed repetitions per allocator; the minimum is reported (least-noise).
_ROUNDS = 2

#: Skip repeat rounds once a single round exceeds this (seconds) — the
#: rebuild baseline runs minutes per round at headline scale, where the
#: measured gap is far wider than round-to-round noise anyway.
_LONG_ROUND_S = 5.0

#: Benchmarked workload cells (exact fidelity, one topology).
_WORKLOADS = ("allreduce", "unstructuredhr", "permutation")

#: Speedup floor enforced at headline scale (the ISSUE acceptance bound).
_HEADLINE_ENDPOINTS = 4096
_HEADLINE_SPEEDUP = 2.0
_HEADLINE_CELLS = ("allreduce", "unstructuredhr")

#: Exact-batch (suffix-resume relevel) A/B: floor on the heavy cells at
#: headline scale, relevel on vs off, incremental allocator both legs.
_EXACT_BATCH_SPEEDUP = 1.5
_EXACT_BATCH_CELLS = ("allreduce", "unstructuredhr")


#: Paper-scale cells (one QFDB-pair port per endpoint, Sec. 5 scale).
#: Gated behind ``REPRO_BENCH_PAPER_SCALE=1`` — a single timed round of
#: the incremental allocator only (the rebuild baseline would run for
#: hours at this size, and its equivalence is already asserted at
#: headline scale).
_PAPER_ENDPOINTS = 131072
_PAPER_CELLS = (("allreduce", "exact"), ("unstructuredhr", "approx"))


def _record_path():
    return RESULTS_DIR / "BENCH_engine.json"


def _load_record() -> dict:
    path = _record_path()
    if path.exists():
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def _write_record(record: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    _record_path().write_text(json.dumps(record, indent=2) + "\n")


def _timed(topo, flows, route_cache, allocator):
    best = float("inf")
    last = None
    for _ in range(_ROUNDS):
        t0 = time.perf_counter()
        result = simulate(topo, flows, fidelity="exact",
                          route_cache=route_cache, allocator=allocator)
        best = min(best, time.perf_counter() - t0)
        last = result
        if best > _LONG_ROUND_S:
            break
    return best, last


@pytest.mark.benchmark(group="engine")
def test_engine_allocator_speedup(benchmark):
    """Measure rebuild vs incremental and persist the record."""
    topo = build_topology("nesttree", BENCH_ENDPOINTS, t=2, u=4)
    route_cache: dict = {}
    workloads = {}
    for name in _WORKLOADS:
        # repeated permutations chain identical-route releases — the warm
        # path's steady state; the other cells use their paper defaults
        kwargs = {"repetitions": 8} if name == "permutation" else {}
        workloads[name] = build_workload(name, BENCH_ENDPOINTS, seed=0,
                                         **kwargs).build()

    def run():
        out = {}
        for name, flows in workloads.items():
            # warm the route cache outside the timed region so both
            # allocators pay zero route-construction cost
            simulate(topo, flows, fidelity="approx",
                     route_cache=route_cache)
            reb_s, reb = _timed(topo, flows, route_cache, "rebuild")
            inc_s, inc = _timed(topo, flows, route_cache, "incremental")
            out[name] = (reb_s, reb, inc_s, inc)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    cells = {}
    for name, (reb_s, reb, inc_s, inc) in results.items():
        # the incremental allocator is exact: identical event sequence
        assert inc.events == reb.events, name
        assert inc.makespan == pytest.approx(reb.makespan, rel=1e-9), name
        assert inc.allocator_stats["allocator"] == "incremental"
        assert reb.allocator_stats["warm_fills"] == 0
        cells[name] = {
            "rebuild_seconds": reb_s,
            "incremental_seconds": inc_s,
            "speedup": reb_s / inc_s,
            "makespan_s": inc.makespan,
            "events": inc.events,
            "full_passes": inc.allocator_stats["full_passes"],
            "warm_fills": inc.allocator_stats["warm_fills"],
        }

    # chained identical-route releases are the warm path's home turf
    assert cells["permutation"]["warm_fills"] > 0

    if BENCH_ENDPOINTS >= _HEADLINE_ENDPOINTS:
        for name in _HEADLINE_CELLS:
            assert cells[name]["speedup"] >= _HEADLINE_SPEEDUP, \
                f"{name}: {cells[name]['speedup']:.2f}x"

    record = {
        "bench": "engine",
        "schema": "repro-bench-engine-v1",
        "endpoints": BENCH_ENDPOINTS,
        "topology": "nesttree(2,4)",
        "fidelity": "exact",
        "rounds": _ROUNDS,
        "cells": cells,
    }
    # the paper-scale and exact-batch blocks are produced by their own
    # runs; a small-scale regeneration (e.g. CI at 64 endpoints) must
    # not drop a larger committed block
    prior_record = _load_record()
    prior = prior_record.get("paper_scale")
    if prior is not None and prior.get("endpoints", 0) > BENCH_ENDPOINTS:
        record["paper_scale"] = prior
    prior = prior_record.get("exact_batch")
    if prior is not None and prior.get("endpoints", 0) > BENCH_ENDPOINTS:
        record["exact_batch"] = prior
    _write_record(record)
    assert _record_path().exists()


@pytest.mark.benchmark(group="engine")
def test_engine_exact_batch(benchmark, monkeypatch):
    """A/B the suffix-resume relevel on the exact-fidelity heavy cells.

    Both legs run the incremental allocator on a warmed route cache; the
    only difference is ``REPRO_EXACT_RELEVEL``.  The relevel path is
    bitwise-exact, so makespans and event counts must match exactly —
    the block records how much wall time the resumed fills save over
    paying a full progressive-filling pass per completion batch.
    """
    topo = build_topology("nesttree", BENCH_ENDPOINTS, t=2, u=4)
    route_cache: dict = {}
    workloads = {name: build_workload(name, BENCH_ENDPOINTS, seed=0).build()
                 for name in _EXACT_BATCH_CELLS}

    def run():
        out = {}
        for name, flows in workloads.items():
            simulate(topo, flows, fidelity="approx",
                     route_cache=route_cache)
            monkeypatch.setenv("REPRO_EXACT_RELEVEL", "0")
            off_s, off = _timed(topo, flows, route_cache, "incremental")
            monkeypatch.setenv("REPRO_EXACT_RELEVEL", "1")
            on_s, on = _timed(topo, flows, route_cache, "incremental")
            out[name] = (off_s, off, on_s, on)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    cells = {}
    for name, (off_s, off, on_s, on) in results.items():
        # the relevel path is exact: bitwise-identical, not approximate
        assert on.makespan == off.makespan, name
        assert on.events == off.events, name
        assert off.allocator_stats["relevel_fills"] == 0, name
        cells[name] = {
            "relevel_off_seconds": off_s,
            "relevel_on_seconds": on_s,
            "speedup": off_s / on_s,
            "makespan_s": on.makespan,
            "events": on.events,
            "full_passes": on.allocator_stats["full_passes"],
            "warm_fills": on.allocator_stats["warm_fills"],
            "relevel_fills": on.allocator_stats["relevel_fills"],
        }

    # independent completions (no chained identical-route release to
    # warm-fill from) are the relevel path's home turf
    assert cells["unstructuredhr"]["relevel_fills"] > 0

    if BENCH_ENDPOINTS >= _HEADLINE_ENDPOINTS:
        for name in _EXACT_BATCH_CELLS:
            assert cells[name]["speedup"] >= _EXACT_BATCH_SPEEDUP, \
                f"{name}: {cells[name]['speedup']:.2f}x"

    record = _load_record()
    if not record:
        record = {"bench": "engine", "schema": "repro-bench-engine-v1",
                  "cells": {}}
    record["exact_batch"] = {
        "endpoints": BENCH_ENDPOINTS,
        "topology": "nesttree(2,4)",
        "rounds": _ROUNDS,
        "cells": cells,
    }
    _write_record(record)


@pytest.mark.benchmark(group="engine")
def test_engine_paper_scale(benchmark):
    """Time the incremental engine at the paper's 131,072-QFDB scale.

    Updates only the record's ``paper_scale`` block (the headline cells
    are the other test's); each cell is one timed end-to-end run —
    topology build and route construction included, because at this size
    they *are* part of the story.
    """
    if os.environ.get("REPRO_BENCH_PAPER_SCALE") != "1":
        pytest.skip("set REPRO_BENCH_PAPER_SCALE=1 to run the "
                    f"{_PAPER_ENDPOINTS:,}-endpoint cells")

    def run():
        build_t0 = time.perf_counter()
        topo = build_topology("nesttree", _PAPER_ENDPOINTS, t=2, u=4)
        build_s = time.perf_counter() - build_t0
        route_cache: dict = {}
        cells = {}
        for name, fidelity in _PAPER_CELLS:
            flows = build_workload(name, _PAPER_ENDPOINTS, seed=0).build()
            t0 = time.perf_counter()
            result = simulate(topo, flows, fidelity=fidelity,
                              route_cache=route_cache)
            wall = time.perf_counter() - t0
            cells[name] = {
                "fidelity": fidelity,
                "allocator": "incremental",
                "wall_seconds": wall,
                "makespan_s": result.makespan,
                "events": result.events,
                "reallocations": result.reallocations,
                "flows": result.num_flows,
                "full_passes": result.allocator_stats["full_passes"],
                "warm_fills": result.allocator_stats["warm_fills"],
                "relevel_fills":
                    result.allocator_stats.get("relevel_fills", 0),
            }
        return build_s, cells

    build_s, cells = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, cell in cells.items():
        assert cell["events"] > 0 and cell["flows"] > _PAPER_ENDPOINTS, name

    record = _load_record()
    if not record:  # paper-scale run on a fresh checkout
        record = {"bench": "engine", "schema": "repro-bench-engine-v1",
                  "cells": {}}
    record["paper_scale"] = {
        "endpoints": _PAPER_ENDPOINTS,
        "topology": "nesttree(2,4)",
        "build_seconds": build_s,
        "cells": cells,
    }
    _write_record(record)
