"""Bench: simulation-service latency and throughput.

Measures the three request classes a long-lived service distinguishes —
**cold** (novel cell, pays one simulation), **store hit** (answered from
the content-addressed store, no simulation), and **deduped concurrent**
(N clients racing on one novel cell share a single simulation) — plus
submission throughput through the bounded queue, and writes the record
to ``benchmarks/results/BENCH_service.json``.

The counters double as correctness assertions: across the whole bench
exactly one simulation runs per unique fingerprint, however many
requests arrive.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from conftest import BENCH_ENDPOINTS, RESULTS_DIR
from repro.service import Broker, ResultStore, ServiceClient, ServiceServer

#: Clients racing on the dedup cell.
_CLIENTS = 8
#: Unique cells pushed through the bounded queue for the throughput leg.
_THROUGHPUT_CELLS = 12
#: Queue capacity for the throughput leg — deliberately smaller than the
#: cell count so the bench exercises 429 backpressure and client retry.
_CAPACITY = 4


def _cell(seed: int = 0) -> dict:
    # distinct fault seeds give arbitrarily many unique fingerprints on
    # one topology, so the sweep inside each batch stays cheap
    return {"workload": "reduce", "tasks": 16,
            "topology": {"family": "fattree", "params": {}},
            "faults": {"cables": 1, "uplinks": 0, "seed": seed}}


class _ServerThread:
    """A live service in a daemon thread with its own event loop."""

    def __init__(self, store_dir, **broker_kw):
        self.store_dir = store_dir
        self.broker_kw = dict({"endpoints": BENCH_ENDPOINTS}, **broker_kw)
        self._ready: queue.Queue = queue.Queue()
        self._stop = None
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            broker = Broker(ResultStore(self.store_dir), **self.broker_kw)
            server = ServiceServer(broker)
            host, port = await server.start()
            self._ready.put((host, port))
            await self._stop.wait()
            await server.close()

        asyncio.run(main())

    def __enter__(self) -> ServiceClient:
        self._thread.start()
        host, port = self._ready.get(timeout=60)
        return ServiceClient(host, port)

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)


def _timed_submit(client: ServiceClient, cells: list[dict],
                  tenant: str = "bench") -> float:
    t0 = time.perf_counter()
    status, doc = client.submit(cells, tenant=tenant, wait=True)
    elapsed = time.perf_counter() - t0
    assert status == 200, doc
    assert all(r["status"] == "done" for r in doc["results"])
    return elapsed


def _throughput(client: ServiceClient) -> dict:
    """Push unique cells through a smaller-than-demand queue."""
    digests: list[str] = []
    rejections = 0
    t0 = time.perf_counter()
    for seed in range(100, 100 + _THROUGHPUT_CELLS):
        while True:
            status, doc = client.submit([_cell(seed)], wait=False)
            if status == 200:
                digests.append(doc["digests"][0])
                break
            assert status == 429, doc
            assert doc["capacity"] == _CAPACITY
            rejections += 1
            time.sleep(0.05)  # typed backpressure: back off and retry
    for digest in digests:
        while True:
            status, doc = client.result(digest)
            if status == 200:
                assert doc["status"] == "done"
                break
            assert status == 202
            time.sleep(0.02)
    wall = time.perf_counter() - t0
    return {"cells": _THROUGHPUT_CELLS, "capacity": _CAPACITY,
            "wall_s": wall, "cells_per_s": _THROUGHPUT_CELLS / wall,
            "rejections": rejections}


@pytest.mark.benchmark(group="service")
def test_service_latency_and_throughput(benchmark, tmp_path):
    """Measure the three request classes and persist the record."""

    def run():
        with _ServerThread(tmp_path / "store",
                           capacity=_CAPACITY) as client:
            cold_s = _timed_submit(client, [_cell(0)])
            hit_s = _timed_submit(client, [_cell(0)])

            with ThreadPoolExecutor(_CLIENTS) as pool:
                racers = list(pool.map(
                    lambda i: _timed_submit(client, [_cell(1)],
                                            tenant=f"t{i}"),
                    range(_CLIENTS)))
            throughput = _throughput(client)
            stats = client.stats()
        return cold_s, hit_s, racers, throughput, stats

    cold_s, hit_s, racers, throughput, stats = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    counters = stats["counters"]
    # one simulation per unique fingerprint across the whole bench:
    # cell(0), cell(1), and the throughput cells — nothing else
    unique = 2 + _THROUGHPUT_CELLS
    assert counters["simulated"] == unique, counters
    assert counters["errors"] == 0, counters
    # the racing clients shared one simulation of cell(1)
    assert counters["deduped"] + counters["store_hits"] \
        >= _CLIENTS - 1 + 1, counters
    # a store hit never simulates, so it cannot be slower than cold
    assert hit_s < cold_s, (hit_s, cold_s)

    record = {
        "schema": "repro-bench-service-v1",
        "endpoints": BENCH_ENDPOINTS,
        "latency": {
            "cold_s": cold_s,
            "store_hit_s": hit_s,
            "dedup_concurrent_worst_s": max(racers),
            "dedup_concurrent_best_s": min(racers),
            "clients": _CLIENTS,
        },
        "dedup": {k: counters[k] for k in
                  ("requests", "simulated", "deduped", "store_hits",
                   "rejected", "batches")},
        "throughput": throughput,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nservice bench record written to {path}")
    print(f"cold {cold_s * 1e3:.1f}ms, store hit {hit_s * 1e3:.2f}ms, "
          f"{_CLIENTS}-client dedup worst {max(racers) * 1e3:.1f}ms, "
          f"throughput {throughput['cells_per_s']:.1f} cells/s "
          f"({throughput['rejections']} backpressure rejections)")
