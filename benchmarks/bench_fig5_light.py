"""Bench: regenerate Figure 5 (light workloads, normalised execution time).

One benchmark per light workload — UnstructuredMgnt, MapReduce, Reduce,
Flood, Sweep3D — swept across the full design space.  The session collector
writes ``benchmarks/results/fig5_report.txt`` with the normalised series
and the paper's shape checks (torus wins Sweep3D/Flood; Reduce is flat).
"""

from __future__ import annotations

import pytest

LIGHT = ["unstructuredmgnt", "mapreduce", "reduce", "flood", "sweep3d"]


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("workload", LIGHT)
def test_fig5_workload(benchmark, workload, explorer, fig5_collector,
                       sweep_jobs):
    table = benchmark.pedantic(
        lambda: explorer.run([workload], jobs=sweep_jobs),
        rounds=1, iterations=1)
    fig5_collector.absorb(table)

    norm = table.normalised(workload)
    assert all(r.makespan > 0 for r in table.records)
    if workload == "reduce":
        # paper Section 5.2: "no noticeable difference between the
        # different networks" — the root's consumption port dominates
        assert max(norm.values()) / min(norm.values()) < 1.05
    if workload in ("sweep3d", "flood"):
        # inverted trend: the torus matches the grid pattern and wins
        assert norm["torus"] <= min(v for k, v in norm.items()
                                    if k != "torus") * 1.05
