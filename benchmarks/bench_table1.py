"""Bench: regenerate Table 1 (average distance and diameter).

Measures the topology build + routing-aware distance analysis for every
hybrid design point at the bench scale, and writes the assembled table —
including the fattree/torus reference rows — to
``benchmarks/results/table1.txt``.  Run ``python -m repro table1``
(defaults to 131,072 endpoints) for the full-scale comparison against the
paper's published values; EXPERIMENTS.md records that run.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_ENDPOINTS, write_result
from repro.core.config import PAPER_CONFIGS
from repro.topology import build as build_topology
from repro.topology import path_length_stats

_FEASIBLE = [(t, u) for t, u in PAPER_CONFIGS
             if BENCH_ENDPOINTS % (t ** 3) == 0]


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("family", ["nestghc", "nesttree"])
@pytest.mark.parametrize("t,u", _FEASIBLE)
def test_table1_cell(benchmark, family, t, u):
    """Distance analysis of one (family, t, u) design point."""

    def run():
        topo = build_topology(family, BENCH_ENDPOINTS, t=t, u=u)
        stats = path_length_stats(topo, max_pairs=20_000, seed=0)
        return stats.average, topo.routing_diameter()

    avg, diam = benchmark.pedantic(run, rounds=1, iterations=1)
    assert avg > 0
    assert diam >= 2  # at least up + down through something


@pytest.mark.benchmark(group="table1")
def test_table1_report(benchmark):
    """Assemble and persist the full Table 1 at the bench scale."""
    from repro.core import table1

    text = benchmark.pedantic(
        lambda: table1(BENCH_ENDPOINTS, max_pairs=20_000),
        rounds=1, iterations=1)
    path = write_result("table1.txt", text)
    assert "Table 1" in text
    assert path.exists()


@pytest.mark.benchmark(group="table1")
def test_table1_orderings_match_paper(benchmark):
    """Shape check: GHC paths are (slightly) shorter; distance grows with u."""

    def run():
        out = {}
        for t, u in _FEASIBLE:
            g = path_length_stats(
                build_topology("nestghc", BENCH_ENDPOINTS, t=t, u=u),
                max_pairs=20_000, seed=0).average
            f = path_length_stats(
                build_topology("nesttree", BENCH_ENDPOINTS, t=t, u=u),
                max_pairs=20_000, seed=0).average
            out[(t, u)] = (g, f)
        return out

    averages = benchmark.pedantic(run, rounds=1, iterations=1)
    for (t, u), (ghc, tree) in averages.items():
        # "the generalised hypercube provides shorter paths by a slight
        # margin" (paper Section 5.1)
        assert ghc <= tree + 1e-9, (t, u)
    # distance decreases as connection density increases (u: 8 -> 1)
    for t in {t for t, _ in _FEASIBLE}:
        series = [averages[(t, u)][1] for u in (8, 4, 2, 1)
                  if (t, u) in averages]
        assert series == sorted(series, reverse=True), t
