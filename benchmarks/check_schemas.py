"""Validate every committed benchmark record in one pass.

CI used to carry one copy-pasted heredoc per ``BENCH_*.json`` file; a
bench that gained a file silently gained *no* validation.  This script
globs ``benchmarks/results/BENCH_*.json``, dispatches each file to its
registered validator, and **fails on any BENCH file without one** — so
adding a bench record means registering its schema here, in the same PR.

Usage::

    PYTHONPATH=src python benchmarks/check_schemas.py
    PYTHONPATH=src python benchmarks/check_schemas.py --service-store DIR

The second form validates every record of a ``repro serve`` result
store directory against the service schema
(:func:`repro.service.store.validate_store_record`) — the CI
``service-smoke`` job points it at the store its round trip populated.

The layout contract (documented in EXPERIMENTS.md): every machine-
readable bench record lives at ``benchmarks/results/BENCH_<name>.json``,
carries a ``schema`` field of the form ``repro-bench-<name>-v<N>``
(legacy records without one are pinned per-validator), and is
regenerated — never hand-edited — by ``benchmarks/bench_<name>.py``.
"""

from __future__ import annotations

import glob
import json
import os
import sys

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")


def check_engine(doc: dict) -> str:
    assert doc["schema"] == "repro-bench-engine-v1", doc.get("schema")
    assert doc["fidelity"] == "exact"
    cells = doc["cells"]
    assert set(cells) >= {"allreduce", "unstructuredhr", "permutation"}
    for name, cell in cells.items():
        for field in ("rebuild_seconds", "incremental_seconds", "speedup",
                      "makespan_s", "events", "full_passes", "warm_fills"):
            assert field in cell, (name, field)
        assert cell["speedup"] > 0 and cell["events"] > 0, name
    detail = f"{len(cells)} cells"
    paper = doc.get("paper_scale")
    if paper is not None:
        assert paper["endpoints"] >= 65536, paper["endpoints"]
        assert paper["cells"], "paper_scale block has no cells"
        for name, cell in paper["cells"].items():
            for field in ("fidelity", "allocator", "wall_seconds",
                          "makespan_s", "events", "flows"):
                assert field in cell, (name, field)
            assert cell["flows"] > paper["endpoints"], name
        detail += (f" + paper_scale@{paper['endpoints']} "
                   f"({', '.join(sorted(paper['cells']))})")
    exact = doc.get("exact_batch")
    if exact is not None:
        assert exact["endpoints"] >= 64, exact.get("endpoints")
        assert exact["cells"], "exact_batch block has no cells"
        for name, cell in exact["cells"].items():
            for field in ("relevel_off_seconds", "relevel_on_seconds",
                          "speedup", "makespan_s", "events",
                          "full_passes", "warm_fills", "relevel_fills"):
                assert field in cell, (name, field)
            assert cell["speedup"] > 0 and cell["events"] > 0, name
        assert any(c["relevel_fills"] > 0
                   for c in exact["cells"].values()), \
            "exact_batch block never took the relevel path"
        detail += (f" + exact_batch@{exact['endpoints']} "
                   f"({', '.join(sorted(exact['cells']))})")
    return detail


def check_routing(doc: dict) -> str:
    assert doc["schema"] == "repro-bench-routing-v1", doc.get("schema")
    assert doc["policies"] == ["deterministic", "ecmp", "adaptive"]
    cells = doc["cells"]
    assert set(cells) == {"allreduce", "unstructuredhr"}, set(cells)
    for name, policies in cells.items():
        for policy, cell in policies.items():
            for field in ("makespan_s", "events", "wall_seconds",
                          "tier_peak_utilisation", "tier_spread"):
                assert field in cell, (name, policy, field)
            assert "uplinks" in cell["tier_spread"], (name, policy)
    return f"topology {doc['topology']}"


def check_resilience(doc: dict) -> str:
    assert doc["schema"] == "repro-bench-resilience-v1", doc.get("schema")
    cells = doc["cells"]
    assert set(cells) == {"healthy", "empty_timeline", "transient"}
    for name, cell in cells.items():
        for field in ("makespan_s", "events", "wall_seconds"):
            assert field in cell, (name, field)
    assert cells["empty_timeline"]["makespan_s"] == \
        cells["healthy"]["makespan_s"]
    counters = cells["transient"]["counters"]
    for field in ("fault_events", "flows_rerouted", "flows_parked",
                  "flows_recovered", "rerouted_bits", "recovery_seconds"):
        assert field in counters, field
    assert counters["fault_events"] > 0
    return f"{doc['cables']} cables on {doc['topology']}"


def check_observability(doc: dict) -> str:
    # legacy record: predates the schema field
    assert doc.get("bench", "observability") == "observability"
    for field in ("endpoints", "workload", "topology", "fidelity",
                  "metrics_off_seconds", "metrics_on_seconds"):
        assert field in doc, field
    assert doc["metrics_on_seconds"] > 0
    return f"{doc['workload']} @ {doc['endpoints']}"


#: BENCH_<name>.json -> validator.  A record file without an entry here
#: fails the run — register the schema when adding the bench.
def check_service(doc: dict) -> str:
    assert doc["schema"] == "repro-bench-service-v1", doc.get("schema")
    latency = doc["latency"]
    for field in ("cold_s", "store_hit_s", "dedup_concurrent_worst_s",
                  "dedup_concurrent_best_s", "clients"):
        assert field in latency, field
    assert 0 < latency["store_hit_s"] < latency["cold_s"], latency
    dedup = doc["dedup"]
    for field in ("requests", "simulated", "deduped", "store_hits",
                  "rejected", "batches"):
        assert field in dedup, field
    # the service's reason to exist: far fewer simulations than requests
    assert dedup["simulated"] < dedup["requests"], dedup
    thr = doc["throughput"]
    for field in ("cells", "capacity", "wall_s", "cells_per_s",
                  "rejections"):
        assert field in thr, field
    assert thr["capacity"] < thr["cells"], thr  # queue actually bounded
    return (f"{dedup['simulated']} sims for {dedup['requests']} requests, "
            f"{thr['cells_per_s']:.1f} cells/s")


VALIDATORS = {
    "BENCH_engine.json": check_engine,
    "BENCH_routing.json": check_routing,
    "BENCH_resilience.json": check_resilience,
    "BENCH_observability.json": check_observability,
    "BENCH_service.json": check_service,
}


def check_service_store_dir(root: str) -> int:
    """Validate every record in a ``repro serve`` store directory."""
    from repro.service.store import validate_store_record

    paths = sorted(glob.glob(os.path.join(root, "??", "*.json")))
    if not paths:
        print(f"no service store records under {root}", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        name = os.path.basename(path)
        try:
            doc = json.loads(open(path).read())
            validate_store_record(doc)
            assert doc["digest"] == name[:-len(".json")], \
                f"record filed under the wrong digest ({doc['digest'][:12]})"
        except Exception as exc:
            print(f"FAIL {name}: {type(exc).__name__}: {exc}")
            failures += 1
            continue
        print(f"ok   {name[:12]}...: {doc['record']['workload']} on "
              f"{doc['record']['topology']}")
    if failures:
        print(f"{failures} of {len(paths)} store records failed validation",
              file=sys.stderr)
        return 1
    print(f"validated {len(paths)} service store records")
    return 0


def main() -> int:
    if sys.argv[1:2] == ["--service-store"]:
        if len(sys.argv) != 3:
            print("usage: check_schemas.py --service-store DIR",
                  file=sys.stderr)
            return 2
        return check_service_store_dir(sys.argv[2])
    paths = sorted(glob.glob(os.path.join(RESULTS_DIR, "BENCH_*.json")))
    if not paths:
        print(f"no BENCH_*.json records under {RESULTS_DIR}",
              file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        name = os.path.basename(path)
        validator = VALIDATORS.get(name)
        if validator is None:
            print(f"FAIL {name}: no registered validator "
                  "(register it in benchmarks/check_schemas.py)")
            failures += 1
            continue
        try:
            detail = validator(json.loads(open(path).read()))
        except Exception as exc:
            print(f"FAIL {name}: {type(exc).__name__}: {exc}")
            failures += 1
            continue
        print(f"ok   {name}: {detail}")
    if failures:
        print(f"{failures} of {len(paths)} bench records failed validation",
              file=sys.stderr)
        return 1
    print(f"validated {len(paths)} bench records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
