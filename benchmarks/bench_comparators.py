"""Bench: related-work comparators in the design space.

The paper's related work positions the hybrids against Dragonfly,
Jellyfish and (the authors' own) thin trees.  This bench runs the full
seven-family line-up on representative traffic and verifies the
qualitative properties the paper attributes to each family:

* the dragonfly collapses under unbalanced group-to-group traffic,
* jellyfish tracks the fattree on random traffic at equal switch count,
* a 2:1 thin tree halves the upper-stage hardware for a bounded slowdown
  on global traffic and none on local traffic.

Results land in ``benchmarks/results/comparators.txt``.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_ENDPOINTS, write_result
from repro import build_topology, build_workload, simulate
from repro.engine.flows import FlowBuilder
from repro.units import DEFAULT_LINK_CAPACITY as CAP

_LINES: list[str] = []


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    yield
    write_result("comparators.txt", "\n".join(_LINES))


def _block_adversarial(n: int, block: int = 32) -> FlowBuilder:
    b = FlowBuilder(n)
    for i in range(n):
        b.add_flow(i, (i + block) % n, CAP / 50)
    return b


@pytest.mark.benchmark(group="comparators")
def test_dragonfly_unbalanced_pathology(benchmark):
    n = BENCH_ENDPOINTS
    flows = _block_adversarial(n).build()

    def run():
        return {name: simulate(build_topology(name, n), flows,
                               fidelity="approx").makespan
                for name in ("dragonfly", "fattree")}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = times["dragonfly"] / times["fattree"]
    _LINES.append(f"[dragonfly] block-adversarial: {ratio:.1f}x the fattree "
                  f"('pathological scenarios ... with unbalanced loads')")
    assert ratio > 4.0


@pytest.mark.benchmark(group="comparators")
def test_jellyfish_tracks_fattree_on_random_traffic(benchmark):
    n = BENCH_ENDPOINTS
    flows = build_workload("unstructuredapp", n, seed=0).build()

    def run():
        return {name: simulate(build_topology(name, n), flows,
                               fidelity="approx").makespan
                for name in ("jellyfish", "fattree", "torus")}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = times["jellyfish"] / times["fattree"]
    _LINES.append(f"[jellyfish] random traffic: {ratio:.2f}x the fattree, "
                  f"{times['jellyfish'] / times['torus']:.2f}x the torus")
    assert ratio < 2.5  # competitive, per the NSDI'12 claim


@pytest.mark.benchmark(group="comparators")
def test_thintree_cost_performance_knob(benchmark):
    n = BENCH_ENDPOINTS
    flows = build_workload("unstructuredapp", n, seed=0).build()

    def run():
        fat = build_topology("fattree", n)
        thin = build_topology("thintree", n, oversubscription=2)
        return {
            "fat_switches": fat.num_switches,
            "thin_switches": thin.num_switches,
            "fat_time": simulate(fat, flows, fidelity="approx").makespan,
            "thin_time": simulate(thin, flows, fidelity="approx").makespan,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    saved = 1 - out["thin_switches"] / out["fat_switches"]
    slower = out["thin_time"] / out["fat_time"]
    _LINES.append(f"[thintree] 2:1 oversubscription saves "
                  f"{saved * 100:.0f}% of the switches for a "
                  f"{slower:.2f}x slowdown on global random traffic")
    assert out["thin_switches"] < out["fat_switches"]
    assert 1.0 <= slower <= 4.0
