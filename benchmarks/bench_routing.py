"""Bench: routing-policy study — does spreading move the uplink bottleneck?

Runs one hybrid design under every routing policy on a collective
(allreduce) and an irregular heavy workload (unstructuredhr), records
makespan, wall time and the per-tier peak utilisation from the
observability layer, and writes the machine-readable study to
``benchmarks/results/BENCH_routing.json`` — the record EXPERIMENTS.md
quotes its routing numbers from.

Two claims are asserted, not just measured:

* ``deterministic`` is bitwise the pre-policy engine (same makespan and
  event count as a ``simulate`` call without the ``routing`` argument);
* on the irregular workload, adaptive routing strictly reduces the
  hottest uplink's delivered bits (``peak_link_bits`` — the
  makespan-independent bottleneck measure: total traffic is fixed, so a
  lower per-link maximum IS the spreading) whenever the design actually
  has tied uplinks to spread over (t=4 subtori; the t=2 fallback design
  has a single minimal uplink per pair, so the assertion is scale-gated).
  ``peak_utilisation`` alone cannot discriminate here: the binding tier's
  hottest link is busy for the whole makespan by definition, so it reads
  ~1.0 under every policy.  The collective is measured but not asserted:
  its traffic is symmetric and spreading can *hurt* it — that asymmetry
  is the study's point (see docs/routing.md).
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import BENCH_ENDPOINTS, RESULTS_DIR, write_result
from repro.engine import simulate
from repro.obs import MetricsCollector, validate_snapshot
from repro.routing import ROUTING_POLICIES
from repro.topology import build as build_topology
from repro.workloads import build as build_workload

#: t=4 subtori have tied alternate uplinks (spreading freedom on the
#: uplinks tier); fall back to t=2 at scales 4^3 does not tile.
BENCH_T = 4 if BENCH_ENDPOINTS >= 128 and BENCH_ENDPOINTS % 64 == 0 else 2

WORKLOADS = ("allreduce", "unstructuredhr")


def _tier_spread(topo, link_bits):
    """Per-tier hottest-link bits and max/mean imbalance."""
    names, index = topo.link_tiers()
    out = {}
    for i, name in enumerate(names):
        bits = link_bits[index == i]
        peak = float(bits.max()) if bits.size else 0.0
        mean = float(bits.mean()) if bits.size else 0.0
        out[name] = {"peak_link_bits": peak,
                     "imbalance": peak / mean if mean > 0 else 1.0}
    return out


def _study():
    topo = build_topology("nesttree", BENCH_ENDPOINTS, t=BENCH_T, u=4)
    route_cache: dict = {}
    cells: dict[str, dict] = {}
    for wname in WORKLOADS:
        flows = build_workload(wname, BENCH_ENDPOINTS, seed=0).build()
        baseline = simulate(topo, flows, fidelity="approx",
                            route_cache=route_cache)
        per_policy: dict[str, dict] = {}
        for policy in ROUTING_POLICIES:
            collector = MetricsCollector(topo.links.num_links)
            t0 = time.perf_counter()
            result = simulate(topo, flows, fidelity="approx",
                              route_cache=route_cache, metrics=collector,
                              routing=policy)
            wall = time.perf_counter() - t0
            snap = result.metrics
            validate_snapshot(snap)
            assert snap["routing"] == policy
            per_policy[policy] = {
                "makespan_s": result.makespan,
                "events": result.events,
                "wall_seconds": wall,
                "tier_peak_utilisation": {
                    name: tier["peak_utilisation"]
                    for name, tier in snap["tiers"].items()},
                "tier_spread": _tier_spread(topo, collector.link_bits),
            }
        # the no-regression claim: deterministic IS the pre-policy engine
        assert per_policy["deterministic"]["makespan_s"] == baseline.makespan
        assert per_policy["deterministic"]["events"] == baseline.events
        cells[wname] = per_policy
    return cells


@pytest.mark.benchmark(group="routing")
def test_routing_policy_study(benchmark):
    cells = benchmark.pedantic(_study, rounds=1, iterations=1)

    if BENCH_T == 4:
        # tied uplinks exist: spreading must relieve the uplink bottleneck
        # on the irregular workload — the hottest uplink carries strictly
        # fewer bits, and the relieved bottleneck shows up as makespan
        hr = cells["unstructuredhr"]
        det_peak = hr["deterministic"]["tier_spread"]["uplinks"][
            "peak_link_bits"]
        assert hr["adaptive"]["tier_spread"]["uplinks"]["peak_link_bits"] \
            < det_peak
        assert hr["ecmp"]["tier_spread"]["uplinks"]["peak_link_bits"] \
            <= det_peak
        assert hr["adaptive"]["makespan_s"] < hr["deterministic"]["makespan_s"]

    doc = {
        "schema": "repro-bench-routing-v1",
        "endpoints": BENCH_ENDPOINTS,
        "topology": f"nesttree({BENCH_T},4)",
        "fidelity": "approx",
        "policies": list(ROUTING_POLICIES),
        "cells": cells,
    }
    write_result("BENCH_routing.json", json.dumps(doc, indent=2))
    assert (RESULTS_DIR / "BENCH_routing.json").exists()
