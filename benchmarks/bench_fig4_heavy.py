"""Bench: regenerate Figure 4 (heavy workloads, normalised execution time).

One benchmark per heavy workload — UnstructuredApp, UnstructuredHR,
Bisection, AllReduce, n-Bodies, Near Neighbors — each sweeping the full
design space (12 hybrid points x 2 families + the Fattree and Torus3D
baselines).  Results are pooled by the session collector, which writes the
normalised series and the paper's Section 5.2 shape checks to
``benchmarks/results/fig4_report.txt``.
"""

from __future__ import annotations

import pytest

HEAVY = ["unstructuredapp", "unstructuredhr", "bisection", "allreduce",
         "nbodies", "nearneighbors"]


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("workload", HEAVY)
def test_fig4_workload(benchmark, workload, explorer, fig4_collector,
                       sweep_jobs):
    table = benchmark.pedantic(
        lambda: explorer.run([workload], jobs=sweep_jobs),
        rounds=1, iterations=1)
    fig4_collector.absorb(table)

    norm = table.normalised(workload)
    # universal Figure 4 shape: the torus never beats the best hybrid on a
    # heavy workload, and every simulated makespan is positive
    best_hybrid = min(v for k, v in norm.items()
                      if k.startswith(("nestghc", "nesttree")))
    assert all(r.makespan > 0 for r in table.records)
    assert norm["torus"] >= best_hybrid
