"""Bench: transient-fault recovery-path overhead vs the healthy engine.

Three measured cells on the torus at ``REPRO_BENCH_ENDPOINTS``:

* ``healthy`` — the plain incremental engine, no timeline;
* ``empty_timeline`` — the transient engine entered with zero events,
  which must be *bitwise* the healthy run (asserted, not just measured):
  the timeline merge may cost wall time but never fidelity;
* ``transient`` — a seeded mid-run fail/repair timeline sized to the
  healthy makespan, reporting the recovery counters alongside the
  wall-time and makespan overhead.

The machine-readable study lands in
``benchmarks/results/BENCH_resilience.json`` — the record EXPERIMENTS.md
quotes its availability-study overhead numbers from, schema-validated in
CI like ``BENCH_engine``/``BENCH_routing``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from conftest import BENCH_ENDPOINTS, RESULTS_DIR, write_result
from repro.engine import simulate
from repro.topology import FaultTimeline, build as build_topology
from repro.workloads import build as build_workload

#: Transient cables cut (and later repaired) in the measured timeline —
#: scaled down with the machine so tiny CI runs stay connected.
BENCH_CABLES = max(2, BENCH_ENDPOINTS // 64)


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _study():
    topo = build_topology("torus", BENCH_ENDPOINTS)
    flows = build_workload("allreduce", BENCH_ENDPOINTS).build()
    route_cache: dict = {}

    healthy, healthy_wall = _timed(
        lambda: simulate(topo, flows, fidelity="approx",
                         route_cache=route_cache))
    empty, empty_wall = _timed(
        lambda: simulate(topo, flows, fidelity="approx",
                         route_cache=route_cache,
                         fault_timeline=FaultTimeline()))
    # the no-regression claim: an empty timeline is bitwise invisible
    assert empty.makespan == healthy.makespan
    assert np.array_equal(empty.completion_times, healthy.completion_times)
    assert empty.events == healthy.events

    timeline = FaultTimeline.sample(
        topo, cables=BENCH_CABLES, seed=0,
        horizon=healthy.makespan * 0.8, mttr=healthy.makespan * 0.2)
    transient, transient_wall = _timed(
        lambda: simulate(topo, flows, fidelity="approx",
                         route_cache=route_cache, fault_timeline=timeline))
    assert transient.transient["fault_events"] > 0

    return {
        "healthy": {"makespan_s": healthy.makespan,
                    "events": healthy.events,
                    "wall_seconds": healthy_wall},
        "empty_timeline": {"makespan_s": empty.makespan,
                           "events": empty.events,
                           "wall_seconds": empty_wall},
        "transient": {"makespan_s": transient.makespan,
                      "events": transient.events,
                      "wall_seconds": transient_wall,
                      "counters": transient.transient,
                      "slowdown": transient.makespan / healthy.makespan,
                      "wall_overhead": transient_wall / healthy_wall
                      if healthy_wall > 0 else None},
    }


@pytest.mark.benchmark(group="resilience")
def test_transient_recovery_overhead(benchmark):
    cells = benchmark.pedantic(_study, rounds=1, iterations=1)

    # degraded-then-healed runs can only take longer than the healthy one
    assert cells["transient"]["makespan_s"] >= cells["healthy"]["makespan_s"]
    assert cells["transient"]["counters"]["flows_rerouted"] >= 0

    doc = {
        "schema": "repro-bench-resilience-v1",
        "endpoints": BENCH_ENDPOINTS,
        "topology": "torus",
        "workload": "allreduce",
        "fidelity": "approx",
        "cables": BENCH_CABLES,
        "cells": cells,
    }
    write_result("BENCH_resilience.json", json.dumps(doc, indent=2))
    assert (RESULTS_DIR / "BENCH_resilience.json").exists()
