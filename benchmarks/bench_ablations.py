"""Ablation benches for the design choices DESIGN.md calls out.

Four ablations, each probing one *mechanism* behind a paper claim rather
than re-running the headline sweep:

1. **Consumption-port serialisation** — the paper explains the flat Reduce
   results by the root's consumption port.  Widening only the NIC links
   must therefore (a) speed Reduce up by that factor and (b) let topology
   differences re-emerge.
2. **Uplink-density knee** — static upper-tier/uplink load analysis as u
   grows: the congestion that produces the u>=4 cliff concentrates on the
   uplink access links.
3. **Routing stretch** — how far the hybrids' two-tier routing strays from
   graph-shortest paths as density falls and subtori grow.
4. **Engine fidelity** — approx (bounded-churn) vs exact reallocation:
   accuracy of the makespan and preservation of topology orderings.

Results land in ``benchmarks/results/ablations.txt``.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_ENDPOINTS, write_result
from repro.engine import analyze, simulate
from repro.topology import NestTree, TorusTopology, build as build_topology
from repro.topology.analysis import shortest_path_check
from repro.units import DEFAULT_LINK_CAPACITY
from repro.workloads import build as build_workload

_LINES: list[str] = []


def _record(line: str) -> None:
    _LINES.append(line)


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    yield
    write_result("ablations.txt", "\n".join(_LINES))


@pytest.mark.benchmark(group="ablations")
def test_ablation_consumption_port(benchmark):
    """Widening only the NIC de-serialises Reduce (paper §5.2 mechanism).

    With the stock 10 Gbps NIC every topology finishes Reduce in exactly
    (N-1) * size / capacity — the flat Figure 5 series.  With an 8x NIC the
    bottleneck moves one hop out: the torus (6 incident links at the root)
    speeds up ~2x, while the fattree stays put because its endpoint still
    hangs off a single 10 Gbps access link — i.e. the serialisation point
    is the root's port, exactly as the paper argues.
    """
    n = 64
    flows = build_workload("reduce", n).build()

    def run():
        out = {}
        for label, builder in (
                ("torus", lambda **kw: TorusTopology.cubic(n, **kw)),
                ("fattree", lambda **kw: build_topology("fattree", n, **kw))):
            base = simulate(builder(), flows).makespan
            wide = simulate(builder(
                nic_capacity=8 * DEFAULT_LINK_CAPACITY), flows).makespan
            out[label] = (base, wide)
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, (base_t, wide_t) in times.items():
        _record(f"[consumption-port] reduce on {label}: "
                f"{base_t * 1e3:.3f} -> {wide_t * 1e3:.3f} ms with nic x8 "
                f"(speedup {base_t / wide_t:.2f}x)")
    # stock NIC: identical makespans across topologies (the paper's claim)
    assert times["torus"][0] == pytest.approx(times["fattree"][0], rel=1e-6)
    # wide NIC: the torus overtakes (multiple links into the root), the
    # fattree remains pinned by its single access link — the topologies
    # only look identical because of the port serialisation
    assert times["torus"][1] < 0.7 * times["torus"][0]
    assert times["fattree"][1] == pytest.approx(times["fattree"][0], rel=1e-6)


@pytest.mark.benchmark(group="ablations")
def test_ablation_density_knee(benchmark):
    """Static uplink load grows ~linearly in u; the knee the paper finds at
    u in {2,4} is upstream congestion concentrating on fewer uplinks."""
    flows = build_workload("unstructuredapp", BENCH_ENDPOINTS, seed=0).build()

    def run():
        out = {}
        for u in (1, 2, 4, 8):
            topo = build_topology("nesttree", BENCH_ENDPOINTS, t=2, u=u)
            report = analyze(topo, flows)
            out[u] = report.bottleneck_time
        return out

    bound = benchmark.pedantic(run, rounds=1, iterations=1)
    for u in (1, 2, 4, 8):
        _record(f"[density-knee] NestTree(2,{u}) static bottleneck "
                f"{bound[u] * 1e3:.3f} ms")
    # halving density at the sparse end must raise the bottleneck bound
    assert bound[8] > bound[2]
    assert bound[4] >= bound[1]


@pytest.mark.benchmark(group="ablations")
def test_ablation_routing_stretch(benchmark):
    """Two-tier routing stretch vs graph-shortest paths."""

    def run():
        out = {}
        out["torus"] = shortest_path_check(TorusTopology.cubic(64), pairs=60)
        out["nesttree(2,1)"] = shortest_path_check(NestTree(64, 2, 1),
                                                   pairs=60)
        out["nesttree(2,8)"] = shortest_path_check(NestTree(64, 2, 8),
                                                   pairs=60)
        out["nesttree(8,1)"] = shortest_path_check(NestTree(512, 8, 1),
                                                   pairs=40)
        return out

    stretch = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, v in stretch.items():
        _record(f"[stretch] {k}: {v:.3f}x shortest-path")
    assert stretch["torus"] == pytest.approx(1.0)
    # big subtori force non-minimal intra-subtorus detours
    assert stretch["nesttree(8,1)"] > 1.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_fidelity(benchmark):
    """Bounded-churn approx mode stays close to exact and preserves the
    topology ordering the figures rely on."""
    n = 128
    flows = build_workload("bisection", n, rounds=4, seed=0).build()
    topos = {
        "nesttree(2,2)": build_topology("nesttree", n, t=2, u=2),
        "fattree": build_topology("fattree", n),
        "torus": build_topology("torus", n),
    }

    def run():
        out = {}
        for label, topo in topos.items():
            exact = simulate(topo, flows, fidelity="exact").makespan
            approx = simulate(topo, flows, fidelity="approx").makespan
            out[label] = (exact, approx)
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, (exact, approx) in times.items():
        err = abs(approx - exact) / exact
        _record(f"[fidelity] {label}: exact {exact * 1e3:.3f} ms, "
                f"approx {approx * 1e3:.3f} ms (err {err * 100:.1f}%)")
        assert err < 0.15, label
    order_exact = sorted(times, key=lambda k: times[k][0])
    order_approx = sorted(times, key=lambda k: times[k][1])
    assert order_exact == order_approx  # orderings preserved
