"""Bench: observability-layer overhead and tier accounting.

Times the same (workload, topology) cell with the metrics collector off
and on, checks the instrumented run conserves bits, and writes the
measured overhead plus the per-tier utilisation summary to
``benchmarks/results/BENCH_observability.json`` — the machine-readable
record the docs quote overhead numbers from.

The collector-off run is the one the <3% acceptance bound applies to: it
must execute the same instructions as a build without ``repro.obs``
(every instrumentation site is gated on ``collector is not None``), so
its time here is the baseline the instrumented run is compared against.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import BENCH_ENDPOINTS, RESULTS_DIR
from repro.obs import MetricsCollector, validate_snapshot
from repro.topology import build as build_topology
from repro.workloads import build as build_workload

#: Timed repetitions per mode; the minimum is reported (least-noise).
_ROUNDS = 3


def _cell():
    topo = build_topology("nesttree", BENCH_ENDPOINTS, t=2, u=4)
    flows = build_workload("allreduce", BENCH_ENDPOINTS, seed=0).build()
    return topo, flows


def _timed(topo, flows, route_cache, *, instrument: bool):
    from repro.engine import simulate

    best = float("inf")
    last = None
    for _ in range(_ROUNDS):
        collector = MetricsCollector(topo.links.num_links) \
            if instrument else None
        t0 = time.perf_counter()
        result = simulate(topo, flows, fidelity="approx",
                          route_cache=route_cache, metrics=collector)
        best = min(best, time.perf_counter() - t0)
        last = result
    return best, last


@pytest.mark.benchmark(group="observability")
def test_observability_overhead(benchmark):
    """Measure collector-on vs collector-off and persist the record."""
    topo, flows = _cell()
    route_cache: dict = {}

    def run():
        # warm the route cache outside the comparison so both modes pay
        # identical route-construction cost
        off_s, off = _timed(topo, flows, route_cache, instrument=False)
        on_s, on = _timed(topo, flows, route_cache, instrument=True)
        return off_s, off, on_s, on

    off_s, off, on_s, on = benchmark.pedantic(run, rounds=1, iterations=1)

    snap = on.metrics
    validate_snapshot(snap)
    assert off.metrics is None
    assert on.makespan == off.makespan  # instrumentation never steers

    # conservation: tier bits partition the delivered link bits, which in
    # turn equal the independently tracked routed bits
    tier_bits = sum(t["delivered_bits"] for t in snap["tiers"].values())
    assert tier_bits == pytest.approx(snap["delivered_link_bits"], rel=1e-9)
    assert snap["delivered_link_bits"] == pytest.approx(
        snap["routed_link_bits"], rel=1e-6)

    overhead = on_s / off_s - 1.0
    record = {
        "bench": "observability",
        "endpoints": BENCH_ENDPOINTS,
        "workload": "allreduce",
        "topology": "nesttree(2,4)",
        "fidelity": "approx",
        "rounds": _ROUNDS,
        "metrics_off_seconds": off_s,
        "metrics_on_seconds": on_s,
        "collector_overhead_fraction": overhead,
        "makespan_s": on.makespan,
        "events": on.events,
        "tiers": {
            name: {
                "mean_utilisation": tier["mean_utilisation"],
                "occupancy": tier["occupancy"],
                "delivered_share": (tier["delivered_bits"]
                                    / snap["delivered_link_bits"]
                                    if snap["delivered_link_bits"] else 0.0),
            }
            for name, tier in snap["tiers"].items()
        },
        "timers_s": snap["timers_s"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_observability.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    assert out.exists()
