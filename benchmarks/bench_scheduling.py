"""Bench: allocation fragmentation and multi-job interference.

INRFlow's remit includes scheduling policies; this bench quantifies the
two effects the co-scheduling layer exposes:

1. **fragmentation** — the same job mix under aligned / contiguous /
   random allocations: interference rises as allocations fragment;
2. **density as isolation** — denser uplinks (the paper's ``u`` knob)
   absorb cross-job traffic, so interference falls as ``u`` falls.

Results land in ``benchmarks/results/scheduling.txt``.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_ENDPOINTS, write_result
from repro import build_topology
from repro.scheduling import Job, coschedule
from repro.scheduling.allocator import by_name, random_allocation

_LINES: list[str] = []


@pytest.fixture(scope="module", autouse=True)
def _write_report():
    yield
    write_result("scheduling.txt", "\n".join(_LINES))


def _job_mix(n: int) -> list[Job]:
    quarter = n // 4
    return [
        Job("halo-a", "nearneighbors", quarter,
            params={"dims": 3, "diagonals": False}, seed=1),
        Job("halo-b", "nearneighbors", quarter,
            params={"dims": 3, "diagonals": False}, seed=2),
        Job("stress", "bisection", 2 * quarter,
            params={"rounds": 4}, seed=5),
    ]


@pytest.mark.benchmark(group="scheduling")
def test_fragmentation_ablation(benchmark):
    topo = build_topology("nesttree", BENCH_ENDPOINTS, t=2, u=2)
    jobs = _job_mix(BENCH_ENDPOINTS)
    sizes = [j.tasks for j in jobs]

    def run():
        return {policy: coschedule(topo, jobs,
                                   by_name(policy, topo, sizes, seed=9))
                for policy in ("aligned", "contiguous", "random")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for policy, r in results.items():
        _LINES.append(f"[fragmentation] {policy}: mean slowdown "
                      f"{r.mean_slowdown():.2f}x ({r.summary()})")
    assert results["aligned"].mean_slowdown() <= \
        results["random"].mean_slowdown()
    assert results["aligned"].mean_slowdown() == pytest.approx(1.0, abs=0.05)


@pytest.mark.benchmark(group="scheduling")
def test_density_buys_isolation(benchmark):
    jobs = _job_mix(BENCH_ENDPOINTS)
    sizes = [j.tasks for j in jobs]

    def run():
        out = {}
        for u in (1, 2, 8):
            topo = build_topology("nesttree", BENCH_ENDPOINTS, t=2, u=u)
            allocs = random_allocation(topo, sizes, seed=9)
            out[u] = coschedule(topo, jobs, allocs).mean_slowdown()
        return out

    slowdowns = benchmark.pedantic(run, rounds=1, iterations=1)
    for u, s in slowdowns.items():
        _LINES.append(f"[density] NestTree(2,{u}) fragmented mix: "
                      f"mean slowdown {s:.2f}x")
    assert slowdowns[1] <= slowdowns[8]
