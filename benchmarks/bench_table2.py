"""Bench: regenerate Table 2 (switch counts, cost and power overheads).

Runs at the paper's full 131,072-endpoint scale — the analysis is planner
based, so no topology build is needed — and asserts the NestTree column
against every published value.  The result table is written to
``benchmarks/results/table2.txt``.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.core import table2
from repro.core.paperdata import PAPER_ENDPOINTS, TABLE2
from repro.topology.cost import CostModel, fattree_switch_count, ghc_switch_count


@pytest.mark.benchmark(group="table2")
def test_table2_report(benchmark):
    text = benchmark.pedantic(lambda: table2(PAPER_ENDPOINTS),
                              rounds=1, iterations=1)
    path = write_result("table2.txt", text)
    assert path.exists()
    # the fattree reference row of the paper appears verbatim
    assert "9216" in text and "5.27%" in text and "1.76%" in text


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("u", [8, 4, 2, 1])
def test_table2_nesttree_matches_paper(benchmark, u):
    """Our planner reproduces every published NestTree switch count and
    overhead percentage exactly."""
    switches_paper, cost_paper, power_paper = (
        TABLE2[(2, u)][1], TABLE2[(2, u)][3], TABLE2[(2, u)][5])

    def run():
        model = CostModel()
        switches = fattree_switch_count(PAPER_ENDPOINTS // u)
        return (switches,
                model.cost_increase(switches, PAPER_ENDPOINTS) * 100,
                model.power_increase(switches, PAPER_ENDPOINTS) * 100)

    switches, cost, power = benchmark.pedantic(run, rounds=1, iterations=1)
    assert switches == switches_paper
    assert cost == pytest.approx(cost_paper, abs=0.005)
    assert power == pytest.approx(power_paper, abs=0.005)


@pytest.mark.benchmark(group="table2")
def test_table2_ghc_u1_matches_paper(benchmark):
    """u=1 is the only GHC configuration the paper pins down: 8192 switches."""
    switches = benchmark.pedantic(
        lambda: ghc_switch_count(PAPER_ENDPOINTS), rounds=1, iterations=1)
    assert switches == TABLE2[(2, 1)][0] == 8192


@pytest.mark.benchmark(group="table2")
def test_table2_cost_scales_with_density(benchmark):
    """More uplinks -> strictly more switches, cost and power (the trade-off
    the paper's Section 5.1 discussion is about)."""

    def run():
        return [fattree_switch_count(PAPER_ENDPOINTS // u)
                for u in (8, 4, 2, 1)]

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    assert series == sorted(series)
    assert series[0] * 4 < series[-1]  # dense tier costs several times more
